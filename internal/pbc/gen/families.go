package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// lit renders an integer literal; negatives are parenthesized so they
// can appear anywhere an expression can.
func lit(v int64) string { return renderX(xnum{v}) }

// renderBody renders `out = e;`, sometimes split through a local
// declaration to exercise Decl/scope handling in both execution paths.
func renderBody(rng *rand.Rand, e xp, out string) string {
	if bin, ok := e.(xbin); ok && bin.op == "+" && rng.Intn(2) == 0 {
		ty := "double"
		if rng.Intn(2) == 0 {
			ty = "int" // all values are integral, so trunc is exact
		}
		return fmt.Sprintf("    %s s = %s;\n    %s = (s + %s);\n", ty, renderX(bin.l), out, renderX(bin.r))
	}
	return fmt.Sprintf("    %s = %s;\n", out, renderX(e))
}

// pointwise: B[i] = f(A[i], i, n) with 2-3 rewritten cell-rule
// alternatives and, sometimes, a whole-matrix macro alternative that
// computes the same thing with a for loop.
func (g *Generator) pointwise() *Case {
	rng := g.rng
	muls := 2
	e := genExpr(rng, []xp{xref{"@a"}, xref{"@a"}, xref{"@i"}, xref{"@n"}}, 3, &muls)
	cellVars := map[string]string{"@a": "a", "@i": "i", "@n": "n"}
	var rules []string
	nAlt := 2 + rng.Intn(2)
	for k := 0; k < nAlt; k++ {
		ek := e
		if k > 0 {
			ek = rewrite(rng, e)
		}
		body := renderBody(rng, substX(ek, cellVars), "b")
		rules = append(rules, "  to (B.cell(i) b) from (A.cell(i) a) {\n"+body+"  }\n")
	}
	if rng.Intn(2) == 0 {
		inner := renderX(substX(rewrite(rng, e), map[string]string{"@a": "a.cell(k)", "@i": "k", "@n": "n"}))
		rules = append(rules,
			"  to (B b) from (A a) {\n    for (int k = 0; k < n; k++) {\n      b.cell(k) = "+inner+";\n    }\n  }\n")
	}
	src := "transform FzPointwise\nfrom A[n]\nto B[n]\n{\n" + strings.Join(rules, "\n") + "}\n"
	return &Case{Family: "pointwise", Src: src, Main: "FzPointwise", MinN: 1, MakeInputs: vecInputs("A")}
}

// scan: a rolling reduction B[i] = w*sum(A[0..i]) + (i+1)*c, computed
// either directly from a prefix region or incrementally from B[i-1] —
// the paper's RollingSum choice, with random coefficients and an extra
// rewritten alternative.
func (g *Generator) scan() *Case {
	rng := g.rng
	w := int64(1 + rng.Intn(3))
	c := int64(rng.Intn(5) - 2)
	direct := fmt.Sprintf("((%s * sum(in)) + ((i + 1) * %s))", lit(w), lit(c))
	incr := fmt.Sprintf("((left + (%s * a)) + %s)", lit(w), lit(c))
	rules := []string{
		"  to (B.cell(i) b) from (A.region(0, (i + 1)) in) {\n    b = " + direct + ";\n  }\n",
		"  to (B.cell(i) b) from (A.cell(i) a, B.cell((i - 1)) left) {\n    b = " + incr + ";\n  }\n",
	}
	if rng.Intn(2) == 0 {
		// Same incremental algorithm, association flipped.
		alt := fmt.Sprintf("(left + ((%s * a) + %s))", lit(w), lit(c))
		rules = append(rules, "  to (B.cell(i) b) from (A.cell(i) a, B.cell((i - 1)) left) {\n    b = "+alt+";\n  }\n")
	}
	src := "transform FzScan\nfrom A[n]\nto B[n]\n{\n" + strings.Join(rules, "\n") + "}\n"
	return &Case{Family: "scan", Src: src, Main: "FzScan", MinN: 1, MakeInputs: vecInputs("A")}
}

// stencil: a versioned time-step recurrence B<0..T>[n] à la Heat1D,
// with integer weights, a priority(1) interior rule (two rewritten
// alternatives), and a priority(2) boundary rule. With tpl=true the
// step count T becomes a template parameter.
func (g *Generator) stencil(tpl bool) *Case {
	rng := g.rng
	T := int64(1 + rng.Intn(4))
	w1, w2, w3 := int64(rng.Intn(5)-2), int64(1+rng.Intn(2)), int64(rng.Intn(5)-2)
	k := int64(rng.Intn(5) - 2)
	k2 := int64(rng.Intn(3) - 1)
	muls := 1
	e0 := genExpr(rng, []xp{xref{"a"}, xref{"a"}, xref{"i"}}, 2, &muls)

	interior := fmt.Sprintf("((((%s * l) + (%s * c)) + (%s * r)) + %s)", lit(w1), lit(w2), lit(w3), lit(k))
	interiorAlt := fmt.Sprintf("((((%s * r) + (%s * l)) + (%s * c)) + %s)", lit(w3), lit(w1), lit(w2), lit(k))

	name := "FzStencil"
	hi := fmt.Sprintf("%d", T)
	family := "stencil"
	header := "transform " + name + "\n"
	if tpl {
		name = "FzTpl"
		family = "template"
		header = "transform " + name + "\ntemplate <T>\n"
		hi = "T"
	}
	src := header +
		"from A[n]\nto B<0.." + hi + ">[n]\n{\n" +
		"  to (B.cell(i, 0) b) from (A.cell(i) a) {\n" + renderBody(rng, e0, "b") + "  }\n\n" +
		"  priority(1) to (B.cell(i, t) b)\n" +
		"  from (B.cell((i - 1), (t - 1)) l, B.cell(i, (t - 1)) c, B.cell((i + 1), (t - 1)) r)\n" +
		"  where t >= 1 {\n    b = " + interior + ";\n  }\n\n" +
		"  priority(1) to (B.cell(i, t) b)\n" +
		"  from (B.cell((i - 1), (t - 1)) l, B.cell(i, (t - 1)) c, B.cell((i + 1), (t - 1)) r)\n" +
		"  where t >= 1 {\n    b = " + interiorAlt + ";\n  }\n\n" +
		"  priority(2) to (B.cell(i, t) b) from (B.cell(i, (t - 1)) c) where t >= 1 {\n" +
		"    b = (c + " + lit(k2) + ");\n  }\n" +
		"}\n"
	cs := &Case{Family: family, Src: src, Main: name, MinN: 1, MakeInputs: vecInputs("A")}
	if tpl {
		cs.TArgs = []int64{int64(1 + rng.Intn(4))}
	}
	return cs
}

// area2d: a 2-D prefix recurrence over B[w, h] in the SummedArea shape:
// a primary interior rule (two rewritten alternatives), secondary edge
// rules, and a priority(2) corner rule. Mode "sum" is the inclusion-
// exclusion prefix sum; mode "max" is a running 2-D maximum.
func (g *Generator) area2d() *Case {
	rng := g.rng
	e := int64(1 + rng.Intn(3))
	var interior, interiorAlt, edgeY, edgeX, corner string
	hasD := rng.Intn(2) == 0
	if hasD {
		interior = fmt.Sprintf("((((%s * a) + l) + u) - d)", lit(e))
		interiorAlt = fmt.Sprintf("((l + (%s * a)) + (u - d))", lit(e))
		edgeY = fmt.Sprintf("((%s * a) + l)", lit(e))
		edgeX = fmt.Sprintf("((%s * a) + u)", lit(e))
		corner = fmt.Sprintf("(%s * a)", lit(e))
	} else {
		interior = fmt.Sprintf("max(max((%s * a), l), u)", lit(e))
		interiorAlt = fmt.Sprintf("max((%s * a), max(u, l))", lit(e))
		edgeY = fmt.Sprintf("max((%s * a), l)", lit(e))
		edgeX = fmt.Sprintf("max((%s * a), u)", lit(e))
		corner = fmt.Sprintf("(%s * a)", lit(e))
	}
	fromInterior := "A.cell(x, y) a, B.cell((x - 1), y) l, B.cell(x, (y - 1)) u"
	if hasD {
		fromInterior += ", B.cell((x - 1), (y - 1)) d"
	}
	src := "transform FzArea\nfrom A[w, h]\nto B[w, h]\n{\n" +
		"  primary to (B.cell(x, y) b)\n  from (" + fromInterior + ") {\n    b = " + interior + ";\n  }\n\n" +
		"  primary to (B.cell(x, y) b)\n  from (" + fromInterior + ") {\n    b = " + interiorAlt + ";\n  }\n\n" +
		"  secondary to (B.cell(x, y) b) from (A.cell(x, y) a, B.cell((x - 1), y) l) where y == 0 {\n" +
		"    b = " + edgeY + ";\n  }\n\n" +
		"  secondary to (B.cell(x, y) b) from (A.cell(x, y) a, B.cell(x, (y - 1)) u) where x == 0 {\n" +
		"    b = " + edgeX + ";\n  }\n\n" +
		"  priority(2) to (B.cell(x, y) b) from (A.cell(x, y) a) {\n    b = " + corner + ";\n  }\n" +
		"}\n"
	return &Case{Family: "area2d", Src: src, Main: "FzArea", MinN: 1, MakeInputs: gridInputs("A")}
}

// pipe: a two-stage pipeline through an intermediate matrix, each stage
// with rewritten alternatives; sometimes the second stage reads a
// prefix region of the intermediate instead of a single cell.
func (g *Generator) pipe() *Case {
	rng := g.rng
	muls1, muls2 := 1, 1
	e1 := genExpr(rng, []xp{xref{"a"}, xref{"a"}, xref{"i"}, xref{"n"}}, 2, &muls1)
	e2 := genExpr(rng, []xp{xref{"t"}, xref{"t"}, xref{"i"}}, 2, &muls2)
	stage1 := "  to (T.cell(i) t) from (A.cell(i) a) {\n" + renderBody(rng, e1, "t") + "  }\n"
	stage1b := "  to (T.cell(i) t) from (A.cell(i) a) {\n" + renderBody(rng, rewrite(rng, e1), "t") + "  }\n"
	var stage2, stage2b string
	if rng.Intn(3) == 0 {
		stage2 = "  to (B.cell(i) b) from (T.region(0, (i + 1)) pre, T.cell(i) t) {\n    b = (sum(pre) + " + renderX(e2) + ");\n  }\n"
		stage2b = "  to (B.cell(i) b) from (T.region(0, (i + 1)) pre, T.cell(i) t) {\n    b = (" + renderX(rewrite(rng, e2)) + " + sum(pre));\n  }\n"
	} else {
		stage2 = "  to (B.cell(i) b) from (T.cell(i) t) {\n" + renderBody(rng, e2, "b") + "  }\n"
		stage2b = "  to (B.cell(i) b) from (T.cell(i) t) {\n" + renderBody(rng, rewrite(rng, e2), "b") + "  }\n"
	}
	src := "transform FzPipe\nfrom A[n]\nthrough T[n]\nto B[n]\n{\n" +
		stage1 + "\n" + stage1b + "\n" + stage2 + "\n" + stage2b + "}\n"
	return &Case{Family: "pipe", Src: src, Main: "FzPipe", MinN: 1, MakeInputs: vecInputs("A")}
}

// recsplit: a pointwise map with a direct cell rule and a recursive
// halving decomposition (the MergeSort shape without the merge), so
// selector cutoffs steer real recursion. The body may use only `a` —
// recursion re-indexes i and shrinks n.
func (g *Generator) recsplit() *Case {
	rng := g.rng
	muls := 1
	e := genExpr(rng, []xp{xref{"a"}, xref{"a"}}, 2, &muls)
	src := "transform FzRec\nfrom A[n]\nto B[n]\n{\n" +
		"  to (B.cell(i) b) from (A.cell(i) a) {\n" + renderBody(rng, e, "b") + "  }\n\n" +
		"  to (B.region(0, (n / 2)) b1, B.region((n / 2), n) b2)\n" +
		"  from (A.region(0, (n / 2)) a1, A.region((n / 2), n) a2) {\n" +
		"    b1 = FzRec(a1);\n    b2 = FzRec(a2);\n  }\n" +
		"}\n"
	return &Case{Family: "recsplit", Src: src, Main: "FzRec", MinN: 1, MakeInputs: vecInputs("A")}
}

// reduce: a per-row dot-product reduction C[y] = e * <A.row(y), B.row(y)>
// — the dense linear-algebra inner kernel — computed via the dot builtin
// (both argument orders; IEEE multiplication commutes bit-exactly) and
// sometimes via an explicit indexed loop over the row views. All values
// are small integers so every alternative is exact. Exercises collapsed
// row views, the vm's dot/sum loops, and indexed view reads across
// tiers. (region() views keep their rank by design, so only the row
// accessor yields the 1-D vectors dot requires.)
func (g *Generator) reduce() *Case {
	rng := g.rng
	e := int64(1 + rng.Intn(3))
	rowA := "A.row(y) ra"
	rules := []string{
		"  to (C.cell(y) c) from (" + rowA + ", B.row(y) rb) {\n    c = (" + lit(e) + " * dot(ra, rb));\n  }\n",
		"  to (C.cell(y) c) from (" + rowA + ", B.row(y) rb) {\n    c = (dot(rb, ra) * " + lit(e) + ");\n  }\n",
	}
	if rng.Intn(2) == 0 {
		rules = append(rules,
			"  to (C.cell(y) c) from ("+rowA+", B.row(y) rb) {\n"+
				"    double s = 0;\n    for (int k = 0; k < w; k++) {\n      s += (ra.cell(k) * rb.cell(k));\n    }\n    c = ("+lit(e)+" * s);\n  }\n")
	}
	src := "transform FzReduce\nfrom A[w, h], B[w, h]\nto C[h]\n{\n" + strings.Join(rules, "\n") + "}\n"
	return &Case{Family: "reduce", Src: src, Main: "FzReduce", MinN: 1, MakeInputs: gridInputs("A", "B")}
}

// invalid: deliberately malformed programs ("deliberately non-affine
// regions" and friends). The front end must reject them with an error,
// never a panic.
func (g *Generator) invalid() *Case {
	rng := g.rng
	variants := []string{
		// Non-affine region argument: product of two center variables.
		"transform FzBad\nfrom A[n]\nto B[n]\n{\n  to (B.cell(i) b) from (A.region(0, (i * i)) in) {\n    b = sum(in);\n  }\n}\n",
		// Division by a zero constant in a region bound.
		"transform FzBad\nfrom A[n]\nto B[n]\n{\n  to (B.cell(i) b) from (A.region(0, (i / 0)) in) {\n    b = sum(in);\n  }\n}\n",
		// Division by a denominator that simplifies to zero.
		"transform FzBad\nfrom A[n]\nto B[n]\n{\n  to (B.cell(i) b) from (A.cell((i / (n - n))) a) {\n    b = a;\n  }\n}\n",
		// Unknown matrix in a rule.
		"transform FzBad\nfrom A[n]\nto B[n]\n{\n  to (B.cell(i) b) from (C.cell(i) c) {\n    b = c;\n  }\n}\n",
		// Output index with a non-unit coefficient.
		"transform FzBad\nfrom A[n]\nto B[n]\n{\n  to (B.cell((2 * i)) b) from (A.cell(i) a) {\n    b = a;\n  }\n}\n",
		// row() on a 1-D matrix.
		"transform FzBad\nfrom A[n]\nto B[n]\n{\n  to (B.cell(i) b) from (A.row(i) r) {\n    b = sum(r);\n  }\n}\n",
		// Truncated source.
		"transform FzBad\nfrom A[n]\nto B[n]\n{\n  to (B.cell(i) b) from (A.cell(i) a) {\n    b = (a + ",
		// Where clause on something no rule covers: cells with no
		// applicable rule must be an analysis error.
		"transform FzBad\nfrom A[n]\nto B[n]\n{\n  to (B.cell(i) b) from (A.cell(i) a) where i < 0 {\n    b = a;\n  }\n}\n",
	}
	src := variants[rng.Intn(len(variants))]
	return &Case{Family: "invalid", Src: src, Main: "FzBad", MinN: 1, WantErr: true, MakeInputs: vecInputs("A")}
}

// substX substitutes pre-rendered operand placeholders in an expression
// tree, so one abstract body can be rendered for different binding
// contexts (cell rule vs. macro loop).
func substX(e xp, m map[string]string) xp {
	switch t := e.(type) {
	case xref:
		if v, ok := m[t.s]; ok {
			return xref{v}
		}
		return t
	case xbin:
		return xbin{t.op, substX(t.l, m), substX(t.r, m)}
	case xcall:
		args := make([]xp, len(t.args))
		for i, a := range t.args {
			args[i] = substX(a, m)
		}
		return xcall{t.fn, args}
	case xcond:
		return xcond{t.cmp, substX(t.l, m), substX(t.r, m), substX(t.a, m), substX(t.b, m)}
	}
	return e
}
