package gen

import (
	"math/rand"
	"strings"
	"testing"

	"petabricks/internal/pbc/ast"
	"petabricks/internal/pbc/parser"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := New(7)
	b := New(7)
	for i := 0; i < 10; i++ {
		ca, err := a.Next()
		if err != nil {
			t.Fatal(err)
		}
		cb, err := b.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ca.Src != cb.Src || ca.Name != cb.Name {
			t.Fatalf("case %d: same seed produced different programs", i)
		}
	}
}

func TestGeneratorCasesValid(t *testing.T) {
	// Next self-validates (parse + analyze + smoke run); this asserts a
	// long streak has no self-check failures and every family shows up.
	n := 150
	if testing.Short() {
		n = 40
	}
	g := New(1)
	fams := map[string]int{}
	for i := 0; i < n; i++ {
		c, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		fams[c.Family]++
		if c.Name == "" || c.Main == "" || c.MakeInputs == nil {
			t.Fatalf("case %d: incomplete case %+v", i, c)
		}
	}
	if !testing.Short() {
		for _, f := range []string{"pointwise", "scan", "stencil", "area2d", "pipe", "recsplit", "template", "invalid"} {
			if fams[f] == 0 {
				t.Errorf("family %s never generated in %d cases", f, n)
			}
		}
	}
}

func TestGeneratedSourceRoundTripsThroughPrinter(t *testing.T) {
	// ast.Print must render generated programs back to source that
	// parses to the same program — the minimizer depends on this.
	g := New(3)
	rng := rand.New(rand.NewSource(3))
	seen := 0
	for seen < 25 {
		c, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if c.WantErr {
			continue
		}
		seen++
		prog, err := parser.Parse(c.Src)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		printed := ast.Print(prog)
		prog2, err := parser.Parse(printed)
		if err != nil {
			t.Fatalf("%s: printed source does not parse: %v\n%s", c.Name, err, printed)
		}
		if ast.Print(prog2) != printed {
			t.Fatalf("%s: printer not a fixed point", c.Name)
		}
		// The re-rendered program must still validate and run.
		c2 := *c
		c2.Src = printed
		if err := Validate(&c2, rng); err != nil {
			t.Fatalf("%s: printed source fails validation: %v\n%s", c.Name, err, printed)
		}
	}
}

func TestMainInstance(t *testing.T) {
	c := &Case{Main: "FzTpl", TArgs: []int64{3}}
	if got := c.MainInstance(); got != "FzTpl<3>" {
		t.Fatalf("MainInstance = %q", got)
	}
	c = &Case{Main: "FzScan"}
	if got := c.MainInstance(); got != "FzScan" {
		t.Fatalf("MainInstance = %q", got)
	}
}

func TestInvalidCasesAreRejectedNotPanicking(t *testing.T) {
	g := New(11)
	found := 0
	for i := 0; i < 400 && found < 10; i++ {
		c, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !c.WantErr {
			continue
		}
		found++
		if !strings.Contains(c.Src, "FzBad") {
			t.Fatalf("invalid case with unexpected source:\n%s", c.Src)
		}
	}
	if found < 5 {
		t.Fatalf("only %d invalid cases in 400 draws", found)
	}
}
