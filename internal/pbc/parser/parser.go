// Package parser builds PetaBricks ASTs from source text by recursive
// descent. It accepts the dialect used throughout the paper: transform
// headers with from/to/through/generator/tunable/template clauses, rules
// written `to (...) from (...) [where expr] { body }` with optional
// priority prefixes, region accessors (.cell/.row/.column/.region),
// matrix version syntax A<0..n>, and C-like rule bodies.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"petabricks/internal/pbc/ast"
	"petabricks/internal/pbc/lexer"
	"petabricks/internal/pbc/token"
)

// Error is a parse error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type parser struct {
	toks []token.Token
	pos  int
	// depth counts nested expression/statement recursion; adversarial
	// input like "((((…" or deeply nested ifs must produce a parse
	// error, not a stack overflow.
	depth int
}

// maxDepth bounds expression and statement nesting. Real programs stay
// in the tens; the limit only exists to stop fuzzer-crafted input from
// exhausting the goroutine stack.
const maxDepth = 256

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxDepth {
		return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf("nesting deeper than %d levels", maxDepth)}
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

// Parse parses a whole source file.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &ast.Program{}
	for !p.at(token.EOF) {
		t, err := p.transform()
		if err != nil {
			return nil, err
		}
		prog.Transforms = append(prog.Transforms, t)
	}
	return prog, nil
}

// ParseTransform parses a source file expected to contain exactly one
// transform.
func ParseTransform(src string) (*ast.Transform, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Transforms) != 1 {
		return nil, fmt.Errorf("expected exactly one transform, found %d", len(prog.Transforms))
	}
	return prog.Transforms[0], nil
}

func (p *parser) cur() token.Token     { return p.toks[p.pos] }
func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if !p.at(k) {
		return token.Token{}, &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf("expected %s, found %s", k, p.cur())}
	}
	return p.next(), nil
}

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) errorf(format string, args ...any) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// transform parses one transform declaration.
func (p *parser) transform() (*ast.Transform, error) {
	start, err := p.expect(token.KwTransform)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	t := &ast.Transform{Name: name.Lexeme, Pos: start.Pos}
	// Optional template parameter list: template <a, b>.
	for !p.at(token.LBrace) && !p.at(token.EOF) {
		switch {
		case p.accept(token.KwTemplate):
			if _, err := p.expect(token.LAngle); err != nil {
				return nil, err
			}
			for {
				id, err := p.expect(token.IDENT)
				if err != nil {
					return nil, err
				}
				t.Templates = append(t.Templates, id.Lexeme)
				if !p.accept(token.Comma) {
					break
				}
			}
			if _, err := p.expect(token.RAngle); err != nil {
				return nil, err
			}
		case p.accept(token.KwFrom):
			ds, err := p.matrixDecls()
			if err != nil {
				return nil, err
			}
			t.From = append(t.From, ds...)
		case p.accept(token.KwTo):
			ds, err := p.matrixDecls()
			if err != nil {
				return nil, err
			}
			t.To = append(t.To, ds...)
		case p.accept(token.KwThrough):
			ds, err := p.matrixDecls()
			if err != nil {
				return nil, err
			}
			t.Through = append(t.Through, ds...)
		case p.accept(token.KwGenerator):
			id, err := p.expect(token.IDENT)
			if err != nil {
				return nil, err
			}
			t.Generator = id.Lexeme
		case p.accept(token.KwTunable):
			td, err := p.tunableDecl()
			if err != nil {
				return nil, err
			}
			t.Tunables = append(t.Tunables, td)
		default:
			return nil, p.errorf("unexpected %s in transform header", p.cur())
		}
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	for !p.at(token.RBrace) {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		r.Index = len(t.Rules)
		t.Rules = append(t.Rules, r)
	}
	if _, err := p.expect(token.RBrace); err != nil {
		return nil, err
	}
	return t, nil
}

// matrixDecls parses a comma-separated list like `A[c,h], B[w,c]`.
func (p *parser) matrixDecls() ([]*ast.MatrixDecl, error) {
	var out []*ast.MatrixDecl
	for {
		d, err := p.matrixDecl()
		if err != nil {
			return nil, err
		}
		out = append(out, d)
		if !p.accept(token.Comma) {
			return out, nil
		}
	}
}

func (p *parser) matrixDecl() (*ast.MatrixDecl, error) {
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	d := &ast.MatrixDecl{Name: name.Lexeme, Pos: name.Pos}
	if p.accept(token.LAngle) {
		// Version bounds use the comparison-free grammar so the closing
		// '>' is not mistaken for a greater-than operator.
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.DotDot); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RAngle); err != nil {
			return nil, err
		}
		d.Version = &ast.VersionRange{Lo: lo, Hi: hi}
	}
	if p.accept(token.LBracket) {
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Dims = append(d.Dims, e)
			if !p.accept(token.Comma) {
				break
			}
		}
		if _, err := p.expect(token.RBracket); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (p *parser) tunableDecl() (ast.TunableDecl, error) {
	name, err := p.expect(token.IDENT)
	if err != nil {
		return ast.TunableDecl{}, err
	}
	td := ast.TunableDecl{Name: name.Lexeme, Pos: name.Pos, Min: 1, Max: 1 << 30, Defalt: 1}
	if p.accept(token.LParen) {
		vals := make([]int64, 0, 3)
		for {
			num, err := p.expect(token.NUMBER)
			if err != nil {
				return ast.TunableDecl{}, err
			}
			v, err := strconv.ParseInt(num.Lexeme, 10, 64)
			if err != nil {
				return ast.TunableDecl{}, &Error{Pos: num.Pos, Msg: "tunable bounds must be integers"}
			}
			vals = append(vals, v)
			if !p.accept(token.Comma) {
				break
			}
		}
		if _, err := p.expect(token.RParen); err != nil {
			return ast.TunableDecl{}, err
		}
		switch len(vals) {
		case 1:
			td.Defalt = vals[0]
		case 2:
			td.Min, td.Max = vals[0], vals[1]
			td.Defalt = vals[0]
		case 3:
			td.Min, td.Max, td.Defalt = vals[0], vals[1], vals[2]
		default:
			return ast.TunableDecl{}, p.errorf("tunable takes 1-3 arguments")
		}
	}
	return td, nil
}

// rule parses one rule: [priority(n)|primary|secondary]
// to ( regions ) from ( regions ) [where expr] { body } — or, for
// purely computational rules, `RuleName ... ` is not supported; the
// paper's rules are all to/from form.
func (p *parser) rule() (*ast.Rule, error) {
	r := &ast.Rule{Pos: p.cur().Pos}
	for {
		switch {
		case p.accept(token.KwPrimary):
			r.Priority = 0
			continue
		case p.accept(token.KwSecondary):
			r.Priority = 1
			continue
		case p.accept(token.KwPriority):
			if _, err := p.expect(token.LParen); err != nil {
				return nil, err
			}
			num, err := p.expect(token.NUMBER)
			if err != nil {
				return nil, err
			}
			v, err := strconv.Atoi(num.Lexeme)
			if err != nil {
				return nil, &Error{Pos: num.Pos, Msg: "priority must be an integer"}
			}
			r.Priority = v
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
			continue
		case p.accept(token.KwRule):
			// Optional `rule Name` cosmetic prefix.
			if p.at(token.IDENT) {
				p.next()
			}
			continue
		}
		break
	}
	if _, err := p.expect(token.KwTo); err != nil {
		return nil, err
	}
	to, err := p.regionList()
	if err != nil {
		return nil, err
	}
	r.To = to
	if _, err := p.expect(token.KwFrom); err != nil {
		return nil, err
	}
	from, err := p.regionList()
	if err != nil {
		return nil, err
	}
	r.From = from
	if p.accept(token.KwWhere) {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		r.Where = w
	}
	if p.at(token.RAWCPP) {
		r.RawBody = p.next().Lexeme
		return r, nil
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	r.Body = body
	return r, nil
}

func (p *parser) regionList() ([]*ast.RegionRef, error) {
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	var out []*ast.RegionRef
	for {
		ref, err := p.regionRef()
		if err != nil {
			return nil, err
		}
		out = append(out, ref)
		if !p.accept(token.Comma) {
			break
		}
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) regionRef() (*ast.RegionRef, error) {
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	ref := &ast.RegionRef{Matrix: name.Lexeme, Kind: ast.RegionAll, Pos: name.Pos}
	if p.accept(token.LAngle) {
		v, err := p.addExpr() // comparison-free: '>' closes the version
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RAngle); err != nil {
			return nil, err
		}
		ref.Version = v
	}
	if p.accept(token.Dot) {
		acc, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		switch acc.Lexeme {
		case "cell":
			ref.Kind = ast.RegionCell
		case "row":
			ref.Kind = ast.RegionRow
		case "column", "col":
			ref.Kind = ast.RegionCol
		case "region":
			ref.Kind = ast.RegionRegion
		default:
			return nil, &Error{Pos: acc.Pos, Msg: fmt.Sprintf("unknown region accessor %q", acc.Lexeme)}
		}
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		if !p.at(token.RParen) {
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				ref.Args = append(ref.Args, e)
				if !p.accept(token.Comma) {
					break
				}
			}
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
	}
	// Optional `out`/`in` direction annotations are treated as binding
	// names unless followed by another identifier.
	if p.at(token.IDENT) {
		b := p.next()
		if p.at(token.IDENT) && (b.Lexeme == "out" || b.Lexeme == "in") {
			// `out name` form: annotation then binding.
			ref.Binding = p.next().Lexeme
		} else {
			ref.Binding = b.Lexeme
		}
	}
	// Trailing `out`/`in` annotation after the binding (Figure 1 style:
	// `to (AB.cell(x,y) out)` binds the cell to the name "out").
	return ref, nil
}

func (p *parser) block() ([]ast.Stmt, error) {
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	var out []ast.Stmt
	for !p.at(token.RBrace) {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if _, err := p.expect(token.RBrace); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) stmtOrBlock() ([]ast.Stmt, error) {
	if p.at(token.LBrace) {
		return p.block()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return []ast.Stmt{s}, nil
}

func (p *parser) stmt() (ast.Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch {
	case p.at(token.KwIf):
		p.next()
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		then, err := p.stmtOrBlock()
		if err != nil {
			return nil, err
		}
		var els []ast.Stmt
		if p.accept(token.KwElse) {
			els, err = p.stmtOrBlock()
			if err != nil {
				return nil, err
			}
		}
		return &ast.If{Cond: cond, Then: then, Else: els}, nil
	case p.at(token.KwFor):
		p.next()
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		var init ast.Stmt
		if !p.at(token.Semi) {
			s, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			init = s
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		var cond ast.Expr
		if !p.at(token.Semi) {
			c, err := p.expr()
			if err != nil {
				return nil, err
			}
			cond = c
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		var post ast.Stmt
		if !p.at(token.RParen) {
			s, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			post = s
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		body, err := p.stmtOrBlock()
		if err != nil {
			return nil, err
		}
		return &ast.For{Init: init, Cond: cond, Post: post, Body: body}, nil
	case p.at(token.KwReturn):
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return &ast.Return{X: e}, nil
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// simpleStmt parses decls, assignments, inc/dec, and expression
// statements (without the trailing semicolon).
func (p *parser) simpleStmt() (ast.Stmt, error) {
	if p.at(token.KwInt) || p.at(token.KwDouble) {
		ty := p.next()
		name, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		d := &ast.Decl{Type: ty.Lexeme, Name: name.Lexeme}
		if p.accept(token.Assign) {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		return d, nil
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	switch {
	case p.at(token.Assign) || p.at(token.PlusAssign) || p.at(token.MinusAssign):
		op := p.next()
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		switch e.(type) {
		case *ast.Ident, *ast.Index:
		default:
			return nil, p.errorf("invalid assignment target %s", ast.ExprString(e))
		}
		return &ast.Assign{LHS: e, Op: op.Lexeme, RHS: rhs}, nil
	case p.at(token.PlusPlus) || p.at(token.MinusMinus):
		op := p.next()
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil, p.errorf("%s requires a variable", op.Lexeme)
		}
		return &ast.IncDec{Name: id.Name, Op: op.Lexeme}, nil
	default:
		return &ast.ExprStmt{X: e}, nil
	}
}

// --- Expression parsing (precedence climbing) -----------------------------

func (p *parser) expr() (ast.Expr, error) { return p.ternary() }

func (p *parser) ternary() (ast.Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	c, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if !p.accept(token.Question) {
		return c, nil
	}
	a, err := p.ternary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Colon); err != nil {
		return nil, err
	}
	b, err := p.ternary()
	if err != nil {
		return nil, err
	}
	return &ast.Cond{C: c, A: a, B: b}, nil
}

func (p *parser) orExpr() (ast.Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(token.OrOr) {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (ast.Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.at(token.AndAnd) {
		p.next()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (ast.Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().Kind {
		case token.LAngle:
			op = "<"
		case token.RAngle:
			op = ">"
		case token.Leq:
			op = "<="
		case token.Geq:
			op = ">="
		case token.Eq:
			op = "=="
		case token.Neq:
			op = "!="
		default:
			return l, nil
		}
		p.next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) addExpr() (ast.Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(token.Plus) || p.at(token.Minus) {
		op := p.next().Lexeme
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (ast.Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.at(token.Star) || p.at(token.Slash) || p.at(token.Percent) {
		op := p.next().Lexeme
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (ast.Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	if p.at(token.Minus) || p.at(token.Not) {
		op := p.next().Lexeme
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: op, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (ast.Expr, error) {
	switch {
	case p.at(token.NUMBER):
		t := p.next()
		v, err := strconv.ParseFloat(t.Lexeme, 64)
		if err != nil {
			return nil, &Error{Pos: t.Pos, Msg: fmt.Sprintf("bad number %q", t.Lexeme)}
		}
		return &ast.Num{Val: v, IsFl: strings.ContainsAny(t.Lexeme, ".eE")}, nil
	case p.at(token.LParen):
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return e, nil
	case p.at(token.IDENT):
		name := p.next()
		// name.cell(args) indexing of a bound region.
		if p.accept(token.Dot) {
			acc, err := p.expect(token.IDENT)
			if err != nil {
				return nil, err
			}
			if acc.Lexeme != "cell" {
				return nil, &Error{Pos: acc.Pos, Msg: fmt.Sprintf("only .cell() indexing is allowed in bodies, got .%s", acc.Lexeme)}
			}
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return &ast.Index{Base: name.Lexeme, Args: args}, nil
		}
		if p.at(token.LParen) {
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return &ast.Call{Fn: name.Lexeme, Args: args}, nil
		}
		return &ast.Ident{Name: name.Lexeme}, nil
	}
	return nil, p.errorf("unexpected %s in expression", p.cur())
}

func (p *parser) callArgs() ([]ast.Expr, error) {
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	var args []ast.Expr
	if !p.at(token.RParen) {
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	return args, nil
}
