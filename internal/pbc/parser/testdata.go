package parser

// Canonical example sources from the paper, used across the compiler
// packages' tests and by the examples.

// RollingSumSrc is Figure 3 of the paper. The output element B_x is the
// sum of the input elements A_0..A_x, so with half-open region(begin,
// end) semantics rule 0 reads A.region(0, i+1); the paper's listing
// writes region(0, i), which under the exclusive-end convention used by
// its own MatrixMultiply example would disagree with rule 1.
const RollingSumSrc = `
transform RollingSum
from A[n]
to B[n]
{
  // rule 0: sum all elements to the left (inclusive)
  to (B.cell(i) b) from (A.region(0, i+1) in) {
    b = sum(in);
  }
  // rule 1: use the previously computed value
  to (B.cell(i) b) from (A.cell(i) a, B.cell(i-1) leftSum) {
    b = a + leftSum;
  }
}
`

// MatrixMultiplySrc is Figure 1 of the paper (MatrixAdd is provided
// alongside since the recursive c-decomposition calls it).
const MatrixMultiplySrc = `
transform MatrixMultiply
from A[c, h], B[w, c]
to AB[w, h]
{
  // Base case, compute a single element
  to (AB.cell(x, y) out) from (A.row(y) a, B.column(x) b) {
    out = dot(a, b);
  }

  // Recursively decompose in c
  to (AB ab) from (A.region(0, 0, c/2, h) a1,
                   A.region(c/2, 0, c, h) a2,
                   B.region(0, 0, w, c/2) b1,
                   B.region(0, c/2, w, c) b2) {
    ab = MatrixAdd(MatrixMultiply(a1, b1), MatrixMultiply(a2, b2));
  }

  // Recursively decompose in w
  to (AB.region(0, 0, w/2, h) ab1,
      AB.region(w/2, 0, w, h) ab2)
  from (A a,
        B.region(0, 0, w/2, c) b1,
        B.region(w/2, 0, w, c) b2) {
    ab1 = MatrixMultiply(a, b1);
    ab2 = MatrixMultiply(a, b2);
  }

  // Recursively decompose in h
  to (AB.region(0, 0, w, h/2) ab1,
      AB.region(0, h/2, w, h) ab2)
  from (A.region(0, 0, c, h/2) a1,
        A.region(0, h/2, c, h) a2,
        B b) {
    ab1 = MatrixMultiply(a1, b);
    ab2 = MatrixMultiply(a2, b);
  }
}

transform MatrixAdd
from X[w, h], Y[w, h]
to Z[w, h]
{
  to (Z.cell(x, y) z) from (X.cell(x, y) a, Y.cell(x, y) b) {
    z = a + b;
  }
}
`
