package parser

import (
	"strings"
	"testing"

	"petabricks/internal/pbc/ast"
)

func TestParseRollingSum(t *testing.T) {
	tr, err := ParseTransform(RollingSumSrc)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "RollingSum" {
		t.Fatalf("name = %q", tr.Name)
	}
	if len(tr.From) != 1 || tr.From[0].Name != "A" || len(tr.From[0].Dims) != 1 {
		t.Fatalf("from = %+v", tr.From)
	}
	if len(tr.To) != 1 || tr.To[0].Name != "B" {
		t.Fatalf("to = %+v", tr.To)
	}
	if len(tr.Rules) != 2 {
		t.Fatalf("rules = %d", len(tr.Rules))
	}
	r0 := tr.Rules[0]
	if len(r0.To) != 1 || r0.To[0].Kind != ast.RegionCell || r0.To[0].Binding != "b" {
		t.Fatalf("rule0 to = %s", r0.To[0])
	}
	if len(r0.From) != 1 || r0.From[0].Kind != ast.RegionRegion {
		t.Fatalf("rule0 from = %s", r0.From[0])
	}
	r1 := tr.Rules[1]
	if len(r1.From) != 2 || r1.From[1].Binding != "leftSum" {
		t.Fatalf("rule1 from = %v", r1.From)
	}
	// rule1's second dependency is B.cell(i-1).
	dep := r1.From[1]
	if dep.Matrix != "B" || dep.Kind != ast.RegionCell {
		t.Fatalf("rule1 dep = %s", dep)
	}
	if got := ast.ExprString(dep.Args[0]); got != "(i-1)" {
		t.Fatalf("rule1 dep index = %s", got)
	}
}

func TestParseMatrixMultiply(t *testing.T) {
	prog, err := Parse(MatrixMultiplySrc)
	if err != nil {
		t.Fatal(err)
	}
	mm, ok := prog.Find("MatrixMultiply")
	if !ok {
		t.Fatal("MatrixMultiply not found")
	}
	if len(mm.Rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(mm.Rules))
	}
	if len(mm.From) != 2 || len(mm.To) != 1 {
		t.Fatalf("header: from=%d to=%d", len(mm.From), len(mm.To))
	}
	// Rule 2 (c-decomposition) body is a nested transform call.
	body := mm.Rules[1].Body
	if len(body) != 1 {
		t.Fatalf("rule1 body stmts = %d", len(body))
	}
	asg, ok := body[0].(*ast.Assign)
	if !ok {
		t.Fatalf("rule1 body not assignment: %T", body[0])
	}
	call, ok := asg.RHS.(*ast.Call)
	if !ok || call.Fn != "MatrixAdd" || len(call.Args) != 2 {
		t.Fatalf("rule1 RHS = %s", ast.ExprString(asg.RHS))
	}
	if _, ok := prog.Find("MatrixAdd"); !ok {
		t.Fatal("MatrixAdd not found")
	}
	// Rules 3/4 write two disjoint regions of AB.
	if len(mm.Rules[2].To) != 2 || mm.Rules[2].To[0].Kind != ast.RegionRegion {
		t.Fatalf("rule2 to = %v", mm.Rules[2].To)
	}
}

func TestParseHeaderFeatures(t *testing.T) {
	src := `
transform Iterate
from X[n]
to Y<0..k>[n]
through T[n]
generator RandomVec
tunable blocksize(8, 512, 64)
tunable plain
{
  to (Y.cell(i) y) from (X.cell(i) x) { y = x; }
}
`
	tr, err := ParseTransform(src)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Generator != "RandomVec" {
		t.Fatalf("generator = %q", tr.Generator)
	}
	if len(tr.Through) != 1 || tr.Through[0].Name != "T" {
		t.Fatalf("through = %+v", tr.Through)
	}
	if len(tr.Tunables) != 2 {
		t.Fatalf("tunables = %+v", tr.Tunables)
	}
	tb := tr.Tunables[0]
	if tb.Name != "blocksize" || tb.Min != 8 || tb.Max != 512 || tb.Defalt != 64 {
		t.Fatalf("tunable = %+v", tb)
	}
	y := tr.To[0]
	if y.Version == nil {
		t.Fatal("version range missing")
	}
	if got := len(y.EffectiveDims()); got != 2 {
		t.Fatalf("effective dims = %d, want 2 (versions desugar to a dimension)", got)
	}
}

func TestParseTemplates(t *testing.T) {
	src := `
transform Sort
template <T>
from A[n]
to B[n]
{
  to (B b) from (A a) { b = copy(a); }
}
`
	tr, err := ParseTransform(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Templates) != 1 || tr.Templates[0] != "T" {
		t.Fatalf("templates = %v", tr.Templates)
	}
}

func TestParsePrioritiesAndWhere(t *testing.T) {
	src := `
transform Edge
from A[n]
to B[n]
{
  primary to (B.cell(i) b) from (A.cell(i) a, A.cell(i-1) l) where i > 0 {
    b = a + l;
  }
  secondary to (B.cell(i) b) from (A.cell(i) a) {
    b = a;
  }
  priority(2) to (B.cell(i) b) from (A.cell(i) a) {
    b = 0 - a;
  }
}
`
	tr, err := ParseTransform(src)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rules[0].Priority != 0 || tr.Rules[1].Priority != 1 || tr.Rules[2].Priority != 2 {
		t.Fatalf("priorities = %d %d %d", tr.Rules[0].Priority, tr.Rules[1].Priority, tr.Rules[2].Priority)
	}
	if tr.Rules[0].Where == nil {
		t.Fatal("where clause missing")
	}
	if got := ast.ExprString(tr.Rules[0].Where); got != "(i>0)" {
		t.Fatalf("where = %s", got)
	}
}

func TestParseRawCppEscape(t *testing.T) {
	src := `
transform Ext
from A[n]
to B[n]
{
  to (B b) from (A a) %{ memcpy(b, a, n); }%
}
`
	tr, err := ParseTransform(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.Rules[0].RawBody, "memcpy") {
		t.Fatalf("raw body = %q", tr.Rules[0].RawBody)
	}
}

func TestParseBodyStatements(t *testing.T) {
	src := `
transform Body
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.region(0, n) a) {
    double acc = 0;
    int j;
    for (j = 0; j < n; j++) {
      if (a.cell(j) > 0) {
        acc += a.cell(j);
      } else {
        acc -= 1;
      }
    }
    b = acc > 100 ? 100 : acc;
  }
}
`
	tr, err := ParseTransform(src)
	if err != nil {
		t.Fatal(err)
	}
	body := tr.Rules[0].Body
	if len(body) != 4 {
		t.Fatalf("body stmts = %d", len(body))
	}
	if _, ok := body[0].(*ast.Decl); !ok {
		t.Fatalf("stmt0 = %T", body[0])
	}
	f, ok := body[2].(*ast.For)
	if !ok {
		t.Fatalf("stmt2 = %T", body[2])
	}
	if f.Init == nil || f.Cond == nil || f.Post == nil || len(f.Body) != 1 {
		t.Fatalf("for = %+v", f)
	}
	ifs, ok := f.Body[0].(*ast.If)
	if !ok || len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Fatalf("if = %+v", f.Body[0])
	}
	if _, ok := body[3].(*ast.Assign); !ok {
		t.Fatalf("stmt3 = %T", body[3])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"transform",                            // missing name
		"transform T from { }",                 // bad from
		"transform T from A[n] to B[n] { to }", // bad rule
		"transform T from A[n] to B[n] { to (B b) from (A a) { b = ; } }",
		"transform T from A[n] to B[n] { to (B b) from (A a) { b = a } }",  // missing semi
		"transform T from A[n] to B[n] { to (B.blob(i) b) from (A a) {} }", // bad accessor
		"transform T from A[n] to B[n] { to (B b) from (A a) %{ x }",       // open escape
		"transform T from A[n] to B[n] { to (B b) from (A a) { 3 = a; } }", // bad lvalue
		"transform T banana A[n] { }",
		"/* unterminated",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseMultipleTransforms(t *testing.T) {
	prog, err := Parse(MatrixMultiplySrc + RollingSumSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Transforms) != 3 {
		t.Fatalf("transforms = %d", len(prog.Transforms))
	}
	if _, ok := prog.Find("NotThere"); ok {
		t.Fatal("Find should miss")
	}
}

func TestRegionRefString(t *testing.T) {
	tr, err := ParseTransform(RollingSumSrc)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Rules[0].From[0].String(); got != "A.region(0, (i+1)) in" {
		t.Fatalf("String = %q", got)
	}
	if tr.Rules[0].Name() != "rule 0" || tr.Rules[1].Name() != "rule 1" {
		t.Fatal("rule names wrong")
	}
}

func TestDeclLookup(t *testing.T) {
	tr, err := ParseTransform(RollingSumSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, role, ok := tr.Decl("A")
	if !ok || role != ast.RoleFrom || d.Name != "A" {
		t.Fatal("Decl(A) wrong")
	}
	_, role, ok = tr.Decl("B")
	if !ok || role != ast.RoleTo {
		t.Fatal("Decl(B) wrong")
	}
	if _, _, ok := tr.Decl("Z"); ok {
		t.Fatal("Decl(Z) should miss")
	}
	if ast.RoleFrom.String() != "from" || ast.RoleTo.String() != "to" || ast.RoleThrough.String() != "through" {
		t.Fatal("role strings")
	}
}
