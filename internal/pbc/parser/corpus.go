package parser

// Additional PetaBricks example sources shared by tests, examples, and
// tools: a complete sorting program written in the language itself, a
// stencil, and a summed-area table.

// MergeSortSrc is sorting expressed in PetaBricks: a quadratic selection
// sort as the base-case rule and a recursive decomposition that merges
// two recursively sorted halves — the exact algorithmic-choice structure
// of §1.1 ("one can switch between algorithms at any recursive level"),
// with the cutoff left to the autotuner.
const MergeSortSrc = `
transform SelectionSort
from A[n]
to B[n]
{
  to (B b) from (A a) {
    for (int i = 0; i < n; i++) {
      b.cell(i) = a.cell(i);
    }
    for (int i = 0; i < n; i++) {
      int best = i;
      for (int j = i + 1; j < n; j++) {
        if (b.cell(j) < b.cell(best)) {
          best = j;
        }
      }
      double tmp = b.cell(i);
      b.cell(i) = b.cell(best);
      b.cell(best) = tmp;
    }
  }
}

transform Merge
from X[a], Y[b]
to Z[a+b]
{
  to (Z z) from (X x, Y y) {
    int i = 0;
    int j = 0;
    for (int k = 0; k < a + b; k++) {
      if (j >= b || (i < a && x.cell(i) <= y.cell(j))) {
        z.cell(k) = x.cell(i);
        i++;
      } else {
        z.cell(k) = y.cell(j);
        j++;
      }
    }
  }
}

transform MergeSortDSL
from A[n]
to B[n]
{
  // rule 0: quadratic base case
  to (B b) from (A a) {
    b = SelectionSort(a);
  }
  // rule 1: recursive decomposition
  to (B b) from (A.region(0, n/2) lo, A.region(n/2, n) hi) {
    b = Merge(MergeSortDSL(lo), MergeSortDSL(hi));
  }
}
`

// Heat1DSrc is an explicit heat-diffusion step over matrix versions: the
// iterative-algorithm pattern the A<0..t> syntax exists for.
const Heat1DSrc = `
transform Heat1D
from A[n]
to B<0..4>[n]
{
  to (B.cell(i, 0) b) from (A.cell(i) a) { b = a; }
  priority(1) to (B.cell(i, t) b)
  from (B.cell(i-1, t-1) l, B.cell(i, t-1) c, B.cell(i+1, t-1) r)
  where t >= 1 {
    b = 0.25 * l + 0.5 * c + 0.25 * r;
  }
  priority(2) to (B.cell(i, t) b) from (B.cell(i, t-1) c) where t >= 1 {
    b = c;
  }
}
`

// SummedAreaSrc is the 2-D prefix-sum recurrence whose dependencies
// point backwards in two different dimensions, exercising the compiler's
// lexicographic wavefront scheduling.
const SummedAreaSrc = `
transform SummedArea
from A[w, h]
to B[w, h]
{
  primary to (B.cell(x, y) b)
  from (A.cell(x, y) a, B.cell(x-1, y) l, B.cell(x, y-1) u, B.cell(x-1, y-1) d) {
    b = a + l + u - d;
  }
  secondary to (B.cell(x, y) b) from (A.cell(x, y) a, B.cell(x-1, y) l) where y == 0 {
    b = a + l;
  }
  secondary to (B.cell(x, y) b) from (A.cell(x, y) a, B.cell(x, y-1) u) where x == 0 {
    b = a + u;
  }
  priority(2) to (B.cell(x, y) b) from (A.cell(x, y) a) {
    b = a;
  }
}
`
