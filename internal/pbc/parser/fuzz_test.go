package parser

import (
	"strings"
	"testing"
)

// FuzzParse checks the front end never panics on arbitrary input and
// that accepted programs survive the analysis-facing invariants the rest
// of the compiler assumes (run with `go test -fuzz=FuzzParse`).
func FuzzParse(f *testing.F) {
	f.Add(RollingSumSrc)
	f.Add(MatrixMultiplySrc)
	f.Add(MergeSortSrc)
	f.Add(Heat1DSrc)
	f.Add(SummedAreaSrc)
	f.Add("transform T from A[n] to B[n] { to (B b) from (A a) %{ raw }% }")
	f.Add("transform T template <K> from A[K] to B<0..K>[n] tunable x(1,2) { to (B b) from (A a) where n > 0 { b = a ? 1 : 0; } }")
	f.Add("transform ((((")
	f.Add("%{ unterminated")
	f.Add("to from where priority(9)")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, tr := range prog.Transforms {
			if tr.Name == "" {
				t.Fatal("accepted transform with empty name")
			}
			for _, r := range tr.Rules {
				if len(r.To) == 0 || len(r.From) == 0 {
					t.Fatal("accepted rule without to/from")
				}
			}
		}
	})
}

// FuzzLexRoundTrip checks the lexer terminates and positions are sane.
func FuzzLexRoundTrip(f *testing.F) {
	f.Add("a + b // c\n/* d */ e")
	f.Add(strings.Repeat("0..", 50))
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = Parse(src)
	})
}
