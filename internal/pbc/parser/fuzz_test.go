package parser

import (
	"errors"
	"strings"
	"testing"

	"petabricks/internal/pbc/lexer"
)

// FuzzParse checks the front end never panics on arbitrary input, that
// every rejection carries a source position, and that accepted programs
// satisfy the invariants the rest of the compiler assumes (run with
// `go test -fuzz=FuzzParse`).
func FuzzParse(f *testing.F) {
	f.Add(RollingSumSrc)
	f.Add(MatrixMultiplySrc)
	f.Add(MergeSortSrc)
	f.Add(Heat1DSrc)
	f.Add(SummedAreaSrc)
	f.Add("transform T from A[n] to B[n] { to (B b) from (A a) %{ raw }% }")
	f.Add("transform T template <K> from A[K] to B<0..K>[n] tunable x(1,2) { to (B b) from (A a) where n > 0 { b = a ? 1 : 0; } }")
	// Regression shapes for fuzz-found hazards: unbounded recursion in
	// ternary/unary/statement nesting and truncation at every layer.
	f.Add("transform " + strings.Repeat("(", 5000))
	f.Add("transform T from A[n] to B[n] { to (B b) from (A a) { b = " + strings.Repeat("(", 5000) + "a")
	f.Add("transform T from A[n] to B[n] { to (B b) from (A a) { b = " + strings.Repeat("-", 5000) + "a; } }")
	f.Add("transform T from A[n] to B[n] { to (B b) from (A a) { " + strings.Repeat("if (a) ", 5000) + "b = a; } }")
	f.Add("transform T from A[n] to B[n] { to (B b) from (A a) { b = a ? " + strings.Repeat("a ? ", 4000) + "1")
	f.Add("%{ unterminated")
	f.Add("to from where priority(9)")
	f.Add("transform T from A[n] to B[n] { to (B b) from (A a) { b = a")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			// Rejection is fine; panics are not, and the error must say
			// where — either a lexical or a syntactic positioned error.
			var pe *Error
			var le *lexer.Error
			switch {
			case errors.As(err, &pe):
				if pe.Pos.Line < 1 || pe.Pos.Col < 1 {
					t.Fatalf("parse error without position: %v", err)
				}
			case errors.As(err, &le):
				if le.Pos.Line < 1 || le.Pos.Col < 1 {
					t.Fatalf("lex error without position: %v", err)
				}
			default:
				t.Fatalf("Parse error is %T, want positioned *parser.Error or *lexer.Error: %v", err, err)
			}
			return
		}
		for _, tr := range prog.Transforms {
			if tr.Name == "" {
				t.Fatal("accepted transform with empty name")
			}
			for _, r := range tr.Rules {
				if len(r.To) == 0 || len(r.From) == 0 {
					t.Fatal("accepted rule without to/from")
				}
			}
		}
	})
}

// FuzzLexRoundTrip checks the lexer terminates and positions are sane.
func FuzzLexRoundTrip(f *testing.F) {
	f.Add("a + b // c\n/* d */ e")
	f.Add(strings.Repeat("0..", 50))
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = Parse(src)
	})
}
