package jit

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"petabricks/internal/matrix"
	"petabricks/internal/pbc/analysis"
	"petabricks/internal/pbc/codegen"
	"petabricks/internal/pbc/parser"
)

// lowerRule parses src, analyzes its only transform, and lowers rule
// index ruleIdx under the given sizes.
func lowerRule(t *testing.T, src string, ruleIdx int, sizes map[string]int64) (*Program, *analysis.Result, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := analysis.Analyze(prog, prog.Transforms[0])
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	p, cerr := Compile(res, res.Rules[ruleIdx], sizes)
	return p, res, cerr
}

const pointwiseSrc = `
transform PW
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(i) a) {
    double t = 2 * a + 1;
    if (t > 10) { t = t - 10; } else { t = -t; }
    b = t;
  }
}
`

func TestLowerPointwise(t *testing.T) {
	p, _, err := lowerRule(t, pointwiseSrc, 0, map[string]int64{"n": 4})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if len(p.Refs) != 2 {
		t.Fatalf("refs = %d, want 2 (b, a)", len(p.Refs))
	}
	a := matrix.FromSlice([]float64{1, 4, 6, 9})
	b := matrix.FromSlice(make([]float64, 4))
	f := p.NewFrame()
	// Refs in To-then-From order: b then a.
	f.BindMatrix(0, b)
	f.BindMatrix(1, a)
	for i := int64(0); i < 4; i++ {
		if err := f.RunCell([]int64{i}); err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	want := []float64{-3, -9, 3, 9}
	for i, w := range want {
		if got := b.Get(i); got != w {
			t.Fatalf("b[%d] = %v, want %v (program:\n%s)", i, got, w, p.Disassemble())
		}
	}
}

func TestLowerLoopAndBuiltins(t *testing.T) {
	src := `
transform Scan
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(i) a) {
    double acc = 0;
    for (int k = 0; k < 3; k++) {
      acc += k * 2;
    }
    b = max(min(a, acc), sqrt(a) > 2 ? pow(a, 0.5) : abs(-a), floor(a / 2));
  }
}
`
	p, _, err := lowerRule(t, src, 0, map[string]int64{"n": 2})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	a := matrix.FromSlice([]float64{9, 1})
	b := matrix.FromSlice(make([]float64, 2))
	f := p.NewFrame()
	f.BindMatrix(0, b)
	f.BindMatrix(1, a)
	for i := int64(0); i < 2; i++ {
		if err := f.RunCell([]int64{i}); err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	// acc = 0+2+4 = 6; cell 0: max(min(9,6)=6, sqrt(9)>2 → 3, floor(4.5)=4) = 6
	// cell 1: max(min(1,6)=1, abs(-1)=1, floor(0.5)=0) = 1
	if b.Get(0) != 6 || b.Get(1) != 1 {
		t.Fatalf("b = [%v %v], want [6 1]\n%s", b.Get(0), b.Get(1), p.Disassemble())
	}
}

func TestLowerShortCircuitSkipsOOBLoad(t *testing.T) {
	// The right operand reads a.cell(i-1), out of range at i=0; the
	// short-circuit left operand must keep it from erroring there.
	src := `
transform SC
from A[n]
to B[n]
{
  priority(1) to (B.cell(i) b) from (A.cell(i) c, A.cell(i-1) l) {
    b = (i > 0 && l > 0) ? 1 : 0;
  }
  priority(2) to (B.cell(i) b) from (A.cell(i) c) {
    b = 0;
  }
}
`
	p, _, err := lowerRule(t, src, 0, map[string]int64{"n": 3})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	a := matrix.FromSlice([]float64{5, 0, 7})
	b := matrix.FromSlice(make([]float64, 3))
	f := p.NewFrame()
	f.BindMatrix(0, b)
	f.BindMatrix(1, a)
	f.BindMatrix(2, a)
	for i := int64(0); i < 3; i++ {
		if err := f.RunCell([]int64{i}); err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	want := []float64{0, 1, 0}
	for i, w := range want {
		if got := b.Get(i); got != w {
			t.Fatalf("b[%d] = %v, want %v", i, got, w)
		}
	}
}

// TestLowerSumOverRegion lowers RollingSum's direct rule — sum over the
// affine prefix view A.region(0, i+1) — and checks the vm computes
// exact prefix sums through OpSumV.
func TestLowerSumOverRegion(t *testing.T) {
	p, _, err := lowerRule(t, parser.RollingSumSrc, 0, map[string]int64{"n": 5})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	a := matrix.FromSlice([]float64{1, 2, 3, 4, 5})
	b := matrix.FromSlice(make([]float64, 5))
	f := p.NewFrame()
	f.BindMatrix(0, b)
	f.BindMatrix(1, a)
	for i := int64(0); i < 5; i++ {
		if err := f.RunCell([]int64{i}); err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	want := []float64{1, 3, 6, 10, 15}
	for i, w := range want {
		if got := b.Get(i); got != w {
			t.Fatalf("b[%d] = %v, want %v\n%s", i, got, w, p.Disassemble())
		}
	}
	// The view's bounds are checked eagerly: at i = n the prefix view
	// [0, n+1) exceeds the matrix and must error before the body runs.
	if err := f.RunCell([]int64{5}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("expected eager view bounds error, got %v", err)
	}
}

// TestLowerDotRowCol lowers MatrixMultiply's base rule — dot over a row
// view and a (non-contiguous) column view — and checks OpDotV against a
// hand-computed product.
func TestLowerDotRowCol(t *testing.T) {
	sizes := map[string]int64{"w": 2, "c": 2, "h": 2}
	p, _, err := lowerRule(t, parser.MatrixMultiplySrc, 0, sizes)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	mk := func(vals ...float64) *matrix.Matrix {
		m := matrix.New(2, 2)
		for i, v := range vals {
			m.Set(v, i/2, i%2)
		}
		return m
	}
	a := mk(1, 2, 3, 4)  // rows [1 2], [3 4]
	bm := mk(5, 6, 7, 8) // columns [5 7], [6 8]
	ab := matrix.New(2, 2)
	f := p.NewFrame()
	f.BindMatrix(0, ab) // To: AB.cell(x, y)
	f.BindMatrix(1, a)  // From: A.row(y)
	f.BindMatrix(2, bm) // From: B.column(x)
	for x := int64(0); x < 2; x++ {
		for y := int64(0); y < 2; y++ {
			if err := f.RunCell([]int64{x, y}); err != nil {
				t.Fatalf("cell (%d,%d): %v", x, y, err)
			}
		}
	}
	want := [][]float64{{19, 22}, {43, 50}} // row y, col x
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			if got := ab.Get(y, x); got != want[y][x] {
				t.Fatalf("ab[%d][%d] = %v, want %v\n%s", y, x, got, want[y][x], p.Disassemble())
			}
		}
	}
}

// TestLowerIndexedAccess covers register-indexed reads and writes on
// view bindings: an explicit loop summing r.cell(k) (OpLoadAt with a
// loop-register index) and an indexed read-modify-write through a From
// view (OpStoreAt).
func TestLowerIndexedAccess(t *testing.T) {
	src := `
transform IX
from A[w, h]
to B[h]
{
  to (B.cell(y) b) from (A.row(y) r) {
    double s = 0;
    for (int k = 0; k < w; k++) {
      s += r.cell(k);
    }
    b = s;
  }
}
`
	p, _, err := lowerRule(t, src, 0, map[string]int64{"w": 3, "h": 2})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	a := matrix.New(2, 3) // row-major h x w
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			a.Set(float64(10*r+c+1), r, c)
		}
	}
	b := matrix.FromSlice(make([]float64, 2))
	f := p.NewFrame()
	f.BindMatrix(0, b)
	f.BindMatrix(1, a)
	for y := int64(0); y < 2; y++ {
		if err := f.RunCell([]int64{y}); err != nil {
			t.Fatalf("cell %d: %v", y, err)
		}
	}
	if b.Get(0) != 1+2+3 || b.Get(1) != 11+12+13 {
		t.Fatalf("b = [%v %v], want [6 36]\n%s", b.Get(0), b.Get(1), p.Disassemble())
	}

	wsrc := `
transform WX
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.region(0, n) r) {
    r.cell(i) = r.cell(i) + 1;
    b = r.cell(i);
  }
}
`
	wp, _, err := lowerRule(t, wsrc, 0, map[string]int64{"n": 3})
	if err != nil {
		t.Fatalf("lower write: %v", err)
	}
	wa := matrix.FromSlice([]float64{4, 5, 6})
	wb := matrix.FromSlice(make([]float64, 3))
	wf := wp.NewFrame()
	wf.BindMatrix(0, wb)
	wf.BindMatrix(1, wa)
	for i := int64(0); i < 3; i++ {
		if err := wf.RunCell([]int64{i}); err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	for i, w := range []float64{5, 6, 7} {
		if wb.Get(i) != w || wa.Get(i) != w {
			t.Fatalf("i=%d: b=%v a=%v, want %v\n%s", i, wb.Get(i), wa.Get(i), w, wp.Disassemble())
		}
	}
	// An out-of-range explicit index panics exactly like matrix.Get.
	func() {
		defer func() {
			r := recover()
			if r == nil || !strings.Contains(fmt.Sprint(r), "out of range") {
				t.Fatalf("expected matrix.Get-style panic, got %v", r)
			}
		}()
		_ = wf.RunCell([]int64{3}) // r.cell(3) on a 3-element view
	}()
}

func TestLowerFallbackReasons(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		rule      int
		construct string
	}{
		{"macro-rule", `
transform V
from A[n]
to B[n]
{
  to (B b) from (A a) { b = a; }
}
`, 0, "macro-rule"},
		{"view-scalar", `
transform R
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.region(i, (i + 1)) r) { b = 2 * r; }
}
`, 0, "view-scalar"},
		{"region-assignment", `
transform RA
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.region(0, n) r) { r = b; b = 0; }
}
`, 0, "region-assignment"},
		{"index-rank", `
transform IR
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.region(0, n) r) { b = r.cell(i, 0); }
}
`, 0, "index-rank"},
		{"transform-call", `
transform Outer
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(i) a) { b = Outer(a); }
}
`, 0, "transform-call"},
		{"builtin-view", `
transform S
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(i) a) { b = sum(a); }
}
`, 0, "builtin"},
		{"builtin-arity", `
transform P
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(i) a) { b = pow(a); }
}
`, 0, "builtin-arity"},
		{"incdec-cell", `
transform I
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(i) a) { b = a; b++; }
}
`, 0, "incdec-target"},
		{"undefined-name", `
transform U
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(i) a) { b = nosuch; }
}
`, 0, "undefined-name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := lowerRule(t, tc.src, tc.rule, map[string]int64{"n": 4})
			var uns *codegen.Unsupported
			if !errors.As(err, &uns) {
				t.Fatalf("err = %v, want *codegen.Unsupported", err)
			}
			if uns.Construct != tc.construct {
				t.Fatalf("construct = %q (%v), want %q", uns.Construct, err, tc.construct)
			}
			if uns.Rule == "" {
				t.Fatal("fallback reason missing rule name")
			}
		})
	}
}

func TestLowerCorpusCoverage(t *testing.T) {
	// The hot corpus families the tier targets must actually lower.
	type tcase struct {
		src   string
		sizes map[string]int64
		// minimum number of rules that must lower (others may fall back)
		minLowered int
	}
	cases := map[string]tcase{
		"Heat1D":     {parser.Heat1DSrc, map[string]int64{"n": 8}, 3},
		"SummedArea": {parser.SummedAreaSrc, map[string]int64{"w": 4, "h": 4}, 4},
		// The paper's reduction kernels: RollingSum's direct
		// sum-over-prefix rule and MatrixMultiply's dot-product base rule
		// lower now that bounded views and reductions are in the fragment.
		"RollingSum":     {parser.RollingSumSrc, map[string]int64{"n": 8}, 2},
		"MatrixMultiply": {parser.MatrixMultiplySrc, map[string]int64{"w": 4, "c": 4, "h": 4}, 1},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			prog, err := parser.Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, err := analysis.Analyze(prog, prog.Transforms[0])
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			lowered := 0
			for _, ri := range res.Rules {
				if p, err := Compile(res, ri, tc.sizes); err == nil {
					lowered++
					if len(p.Code) == 0 || p.Code[len(p.Code)-1].Op != OpHalt {
						t.Fatalf("%s: program must end in halt", ri.Rule.Name())
					}
				}
			}
			if lowered < tc.minLowered {
				t.Fatalf("lowered %d rules, want >= %d", lowered, tc.minLowered)
			}
		})
	}
}
