package jit

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"petabricks/internal/pbc/analysis"
	"petabricks/internal/pbc/codegen"
	"petabricks/internal/pbc/parser"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/fallback_golden.txt from the current lowerer")

// TestFallbackGolden pins the bytecode tier's coverage of the example
// corpus: every rule of every corpus transform is run through Compile
// and the outcome — lowered, or the typed construct it fell back on —
// is compared line by line against a committed golden file. Widening
// the lowerable fragment (a rule flips to "lowered") or accidentally
// narrowing it (a new fallback construct appears) both fail this test
// until the golden is regenerated with -update and the diff reviewed.
func TestFallbackGolden(t *testing.T) {
	corpus := []struct {
		src   string
		sizes map[string]int64
	}{
		{parser.RollingSumSrc, map[string]int64{"n": 8}},
		{parser.MatrixMultiplySrc, map[string]int64{"w": 4, "c": 4, "h": 4}},
		{parser.MergeSortSrc, map[string]int64{"n": 8, "a": 4, "b": 4}},
		{parser.Heat1DSrc, map[string]int64{"n": 8}},
		{parser.SummedAreaSrc, map[string]int64{"w": 4, "h": 4}},
	}
	var b strings.Builder
	for _, c := range corpus {
		prog, err := parser.Parse(c.src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		for _, tr := range prog.Transforms {
			if len(tr.Templates) > 0 {
				fmt.Fprintf(&b, "%s: template (instantiated per use, not lowered directly)\n", tr.Name)
				continue
			}
			res, err := analysis.Analyze(prog, tr)
			if err != nil {
				t.Fatalf("analyze %s: %v", tr.Name, err)
			}
			for _, ri := range res.Rules {
				if _, cerr := Compile(res, ri, c.sizes); cerr == nil {
					fmt.Fprintf(&b, "%s/%s: lowered\n", tr.Name, ri.Rule.Name())
				} else {
					construct := cerr.Error()
					var u *codegen.Unsupported
					if errors.As(cerr, &u) {
						construct = u.Construct
					}
					fmt.Fprintf(&b, "%s/%s: fallback %s\n", tr.Name, ri.Rule.Name(), construct)
				}
			}
		}
	}
	got := b.String()

	golden := filepath.Join("testdata", "fallback_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	wantLines := strings.Split(strings.TrimRight(want, "\n"), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Errorf("line %d:\n  got  %q\n  want %q", i+1, g, w)
		}
	}
	t.Error("jit fallback coverage changed; review and regenerate with: go test ./internal/pbc/jit -run TestFallbackGolden -update")
}
