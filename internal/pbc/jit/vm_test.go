package jit

import (
	"math"
	"strings"
	"testing"

	"petabricks/internal/matrix"
)

// run assembles a one-off program around the instruction list, executes
// it in a fresh frame, and returns register 0.
func runProg(t *testing.T, p *Program, center []int64, mats ...*matrix.Matrix) (float64, error) {
	t.Helper()
	f := p.NewFrame()
	for i, m := range mats {
		f.BindMatrix(i, m)
	}
	err := f.RunCell(center)
	return f.regs[0], err
}

func TestOpcodes(t *testing.T) {
	halt := Instr{Op: OpHalt}
	cases := []struct {
		name    string
		init    []float64 // initial registers; result read from reg 0
		consts  []float64
		code    []Instr
		want    float64
		wantErr string
	}{
		{"const", []float64{0}, []float64{3.5}, []Instr{{OpConst, 0, 0, 0}, halt}, 3.5, ""},
		{"mov", []float64{0, 7}, nil, []Instr{{OpMov, 0, 1, 0}, halt}, 7, ""},
		{"add", []float64{0, 2, 3}, nil, []Instr{{OpAdd, 0, 1, 2}, halt}, 5, ""},
		{"sub", []float64{0, 2, 3}, nil, []Instr{{OpSub, 0, 1, 2}, halt}, -1, ""},
		{"mul", []float64{0, 2.5, 4}, nil, []Instr{{OpMul, 0, 1, 2}, halt}, 10, ""},
		{"div", []float64{0, 7, 2}, nil, []Instr{{OpDiv, 0, 1, 2}, halt}, 3.5, ""},
		{"div-zero", []float64{0, 7, 0}, nil, []Instr{{OpDiv, 0, 1, 2}, halt}, 0, "division by zero"},
		{"mod", []float64{0, 7.5, 2}, nil, []Instr{{OpMod, 0, 1, 2}, halt}, math.Mod(7.5, 2), ""},
		{"mod-negative", []float64{0, -7, 3}, nil, []Instr{{OpMod, 0, 1, 2}, halt}, math.Mod(-7, 3), ""},
		{"mod-zero", []float64{0, 7, 0}, nil, []Instr{{OpMod, 0, 1, 2}, halt}, 0, "modulo by zero"},
		{"neg", []float64{0, 4}, nil, []Instr{{OpNeg, 0, 1, 0}, halt}, -4, ""},
		{"not-true", []float64{0, 0}, nil, []Instr{{OpNot, 0, 1, 0}, halt}, 1, ""},
		{"not-false", []float64{0, 2}, nil, []Instr{{OpNot, 0, 1, 0}, halt}, 0, ""},
		{"lt", []float64{0, 1, 2}, nil, []Instr{{OpLT, 0, 1, 2}, halt}, 1, ""},
		{"le-eq", []float64{0, 2, 2}, nil, []Instr{{OpLE, 0, 1, 2}, halt}, 1, ""},
		{"gt", []float64{0, 1, 2}, nil, []Instr{{OpGT, 0, 1, 2}, halt}, 0, ""},
		{"ge", []float64{0, 3, 2}, nil, []Instr{{OpGE, 0, 1, 2}, halt}, 1, ""},
		{"eq", []float64{0, 2, 2}, nil, []Instr{{OpEQ, 0, 1, 2}, halt}, 1, ""},
		{"ne", []float64{0, 2, 2}, nil, []Instr{{OpNE, 0, 1, 2}, halt}, 0, ""},
		{"trunc", []float64{0, -2.7}, nil, []Instr{{OpTrunc, 0, 1, 0}, halt}, -2, ""},
		{"abs", []float64{0, -3}, nil, []Instr{{OpAbs, 0, 1, 0}, halt}, 3, ""},
		{"sqrt", []float64{0, 9}, nil, []Instr{{OpSqrt, 0, 1, 0}, halt}, 3, ""},
		{"sqrt-negative", []float64{0, -1}, nil, []Instr{{OpSqrt, 0, 1, 0}, halt}, math.NaN(), ""},
		{"floor", []float64{0, -2.3}, nil, []Instr{{OpFloor, 0, 1, 0}, halt}, -3, ""},
		{"ceil", []float64{0, 2.3}, nil, []Instr{{OpCeil, 0, 1, 0}, halt}, 3, ""},
		{"min", []float64{0, 2, 3}, nil, []Instr{{OpMin, 0, 1, 2}, halt}, 2, ""},
		{"max", []float64{0, 2, 3}, nil, []Instr{{OpMax, 0, 1, 2}, halt}, 3, ""},
		{"pow", []float64{0, 2, 10}, nil, []Instr{{OpPow, 0, 1, 2}, halt}, 1024, ""},
		{"jmp", []float64{0, 5}, nil, []Instr{{OpJmp, 2, 0, 0}, {OpMov, 0, 1, 0}, halt}, 0, ""},
		{"jz-taken", []float64{0, 0, 5}, nil, []Instr{{OpJZ, 2, 1, 0}, {OpMov, 0, 2, 0}, halt}, 0, ""},
		{"jz-not-taken", []float64{0, 1, 5}, nil, []Instr{{OpJZ, 2, 1, 0}, {OpMov, 0, 2, 0}, halt}, 5, ""},
		{"jnz-taken", []float64{0, 1, 5}, nil, []Instr{{OpJNZ, 2, 1, 0}, {OpMov, 0, 2, 0}, halt}, 0, ""},
		{"jnz-not-taken", []float64{0, 0, 5}, nil, []Instr{{OpJNZ, 2, 1, 0}, {OpMov, 0, 2, 0}, halt}, 5, ""},
		{"guard-ok", []float64{0}, nil, []Instr{{OpGuard, 0, 0, 0}, halt}, 1, ""},
		{"guard-runaway", []float64{0, 100_000_000}, nil,
			[]Instr{{OpMov, 0, 1, 0}, {OpGuard, 0, 0, 0}, halt}, 0, "runaway"},
		{"bad-opcode", []float64{0}, nil, []Instr{{Op: 200}, halt}, 0, "bad opcode"},
		// A tight counted loop: r0 counts 0..r1 by r2.
		{"loop", []float64{0, 10, 1, 0}, nil, []Instr{
			{OpLT, 3, 0, 1},  // 0: r3 = r0 < r1
			{OpJZ, 4, 3, 0},  // 1: exit when done
			{OpAdd, 0, 0, 2}, // 2: r0 += r2
			{OpJmp, 0, 0, 0}, // 3: back to cond
			halt,             // 4
		}, 10, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &Program{Name: "test/" + tc.name, Code: tc.code, Consts: tc.consts, RegInit: tc.init}
			got, err := runProg(t, p, nil)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if math.IsNaN(tc.want) {
				if !math.IsNaN(got) {
					t.Fatalf("got %v, want NaN", got)
				}
				return
			}
			if got != tc.want {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
		})
	}
}

func TestLoadStoreAffine(t *testing.T) {
	// One-dimensional shift: dst[i] = src[i-1], bound to len-4 vectors.
	src := matrix.FromSlice([]float64{10, 20, 30, 40})
	dst := matrix.FromSlice(make([]float64, 4))
	p := &Program{
		Name:      "test/shift",
		NCenter:   1,
		CenterReg: []int32{-1},
		RegInit:   []float64{0},
		Refs: []Ref{
			{Matrix: "D", Binding: "d", ND: 1, Base: []int64{0}, Coeff: []int64{1}},
			{Matrix: "S", Binding: "s", ND: 1, Base: []int64{-1}, Coeff: []int64{1}},
		},
		Code: []Instr{{OpLoad, 0, 1, 0}, {OpStore, 0, 0, 0}, {Op: OpHalt}},
	}
	f := p.NewFrame()
	f.BindMatrix(0, dst)
	f.BindMatrix(1, src)
	for i := int64(1); i < 4; i++ {
		if err := f.RunCell([]int64{i}); err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	want := []float64{0, 10, 20, 30}
	for i, w := range want {
		if got := dst.Get(i); got != w {
			t.Fatalf("dst[%d] = %v, want %v", i, got, w)
		}
	}
	// Out-of-range read (center 0 → src[-1]) errors lazily with the
	// binding name, but only because the body touches it.
	if err := f.RunCell([]int64{0}); err == nil || !strings.Contains(err.Error(), `"s" out of range`) {
		t.Fatalf("expected out-of-range error naming binding, got %v", err)
	}
	// Out-of-range write.
	if err := f.RunCell([]int64{4}); err == nil || !strings.Contains(err.Error(), `"d" out of range`) {
		t.Fatalf("expected store out-of-range error, got %v", err)
	}
	// An out-of-range ref the body never touches is not an error.
	quiet := &Program{
		Name:      "test/quiet",
		NCenter:   1,
		CenterReg: []int32{-1},
		RegInit:   []float64{0},
		Refs: []Ref{
			{Matrix: "S", Binding: "s", ND: 1, Base: []int64{-100}, Coeff: nil},
		},
		Code: []Instr{{Op: OpHalt}},
	}
	qf := quiet.NewFrame()
	qf.BindMatrix(0, src)
	if err := qf.RunCell([]int64{0}); err != nil {
		t.Fatalf("untouched out-of-range ref should not error: %v", err)
	}
}

func TestStridedViewBinding(t *testing.T) {
	// Bind a non-contiguous column view: strides must come from the
	// view, not the parent, and Backing addressing must hit the right
	// cells.
	base := matrix.New(3, 3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			base.Set(float64(3*r+c+1), r, c)
		}
	}
	col := base.Region([]int{0, 1}, []int{3, 2}) // middle column, 3x1
	p := &Program{
		Name:      "test/col",
		NCenter:   2,
		CenterReg: []int32{-1, -1},
		RegInit:   []float64{0, 100},
		Refs: []Ref{
			// 2-D cell ref (x, y) = (0, center_y).
			{Matrix: "C", Binding: "c", ND: 2, Base: []int64{0, 0}, Coeff: []int64{0, 0, 0, 1}},
		},
		Code: []Instr{{OpLoad, 0, 0, 0}, {OpStore, 0, 1, 0}, {Op: OpHalt}},
	}
	f := p.NewFrame()
	f.BindMatrix(0, col)
	for y := int64(0); y < 3; y++ {
		if err := f.RunCell([]int64{0, y}); err != nil {
			t.Fatalf("cell y=%d: %v", y, err)
		}
	}
	for y := 0; y < 3; y++ {
		if got := base.Get(y, 1); got != 100 {
			t.Fatalf("base[%d][1] = %v, want 100", y, got)
		}
	}
	if base.Get(0, 0) != 1 || base.Get(2, 2) != 9 {
		t.Fatal("cells outside the view were clobbered")
	}
}

func TestMalformedProgramPanics(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
	}{
		{"bad-register", &Program{Name: "p", RegInit: []float64{0},
			Code: []Instr{{OpMov, 50, 0, 0}, {Op: OpHalt}}}},
		{"bad-ref", &Program{Name: "p", RegInit: []float64{0},
			Code: []Instr{{OpLoad, 0, 3, 0}, {Op: OpHalt}}}},
		{"jump-past-end", &Program{Name: "p", RegInit: []float64{0},
			Code: []Instr{{OpJmp, 99, 0, 0}, {Op: OpHalt}}}},
		{"missing-halt", &Program{Name: "p", RegInit: []float64{0},
			Code: []Instr{{OpMov, 0, 0, 0}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f := tc.p.NewFrame()
			_ = f.RunCell(nil)
		})
	}
}

func TestDisassemble(t *testing.T) {
	p := &Program{Code: []Instr{{OpAdd, 0, 1, 2}, {Op: OpHalt}}}
	d := p.Disassemble()
	if !strings.Contains(d, "add") || !strings.Contains(d, "halt") {
		t.Fatalf("unexpected disassembly:\n%s", d)
	}
	if Op(200).String() != "op(200)" {
		t.Fatalf("unknown op rendering: %s", Op(200))
	}
}
