package jit

import (
	"reflect"
	"testing"
)

// validProgram builds a small program exercising every operand class:
// constants, arithmetic, a load/store pair, a guarded backward jump.
func validProgram() *Program {
	return &Program{
		Name: "T/rule 0",
		Code: []Instr{
			{Op: OpConst, A: 0, B: 0},
			{Op: OpLoad, A: 1, B: 0},
			{Op: OpAdd, A: 2, B: 0, C: 1},
			{Op: OpGuard, A: 2},
			{Op: OpJZ, A: 6, B: 2},
			{Op: OpStore, A: 1, B: 2},
			{Op: OpHalt},
		},
		Consts:    []float64{1.5},
		RegInit:   []float64{0, 0, 0},
		NCenter:   1,
		CenterReg: []int32{2},
		Refs: []Ref{
			{Matrix: "A", Binding: "a", ND: 1, Base: []int64{3}, Coeff: []int64{1}},
			{Matrix: "B", Binding: "b", ND: 1, Base: []int64{0}, Coeff: nil},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := map[int]*Program{0: validProgram(), 2: validProgram()}
	in[2].Name = "T/rule 2"
	payload, err := EncodePrograms(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodePrograms(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodePrograms([]byte("not a gob stream")); err == nil {
		t.Error("garbage payload decoded")
	}
	if _, err := DecodePrograms(nil); err == nil {
		t.Error("empty payload decoded")
	}
	// A truncated but prefix-valid gob stream must also fail cleanly.
	payload, err := EncodePrograms(map[int]*Program{0: validProgram()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePrograms(payload[:len(payload)/2]); err == nil {
		t.Error("truncated payload decoded")
	}
}

// TestValidateRejections mutates a valid program one invariant at a
// time. The VM run loop has no bounds checks by design, so each of
// these is a memory-safety violation Validate must catch before a
// disk-loaded program ever executes.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(p *Program)
	}{
		{"empty_code", func(p *Program) { p.Code = nil }},
		{"missing_halt", func(p *Program) { p.Code = p.Code[:len(p.Code)-1] }},
		{"dest_register_out_of_range", func(p *Program) { p.Code[2].A = 99 }},
		{"src_register_out_of_range", func(p *Program) { p.Code[2].B = -1 }},
		{"const_index_out_of_range", func(p *Program) { p.Code[0].B = 7 }},
		{"load_ref_out_of_range", func(p *Program) { p.Code[1].B = 5 }},
		{"store_ref_out_of_range", func(p *Program) { p.Code[5].A = -2 }},
		{"jump_past_end", func(p *Program) { p.Code[4].A = int32(len(p.Code)) }},
		{"negative_jump_target", func(p *Program) { p.Code[4].A = -1 }},
		{"jump_cond_register_out_of_range", func(p *Program) { p.Code[4].B = 88 }},
		{"guard_register_out_of_range", func(p *Program) { p.Code[3].A = 12 }},
		{"unknown_opcode", func(p *Program) { p.Code[2].Op = Op(200) }},
		{"center_reg_count_mismatch", func(p *Program) { p.CenterReg = nil }},
		{"center_reg_out_of_range", func(p *Program) { p.CenterReg[0] = 44 }},
		{"negative_ncenter", func(p *Program) { p.NCenter = -1; p.CenterReg = nil }},
		{"ref_base_rank_mismatch", func(p *Program) { p.Refs[0].Base = []int64{1, 2} }},
		{"ref_coeff_length_mismatch", func(p *Program) { p.Refs[0].Coeff = []int64{1, 2, 3} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := validProgram()
			if err := p.Validate(); err != nil {
				t.Fatalf("baseline program invalid: %v", err)
			}
			tc.mutate(p)
			if err := p.Validate(); err == nil {
				t.Error("mutated program validated")
			}
		})
	}
}

// validViewProgram builds a program exercising the view-ref operand
// classes: a 1-D bounded view, a collapsed 2-D row view, and all four
// reduction/indexed ops over them.
func validViewProgram() *Program {
	return &Program{
		Name: "T/rule 1",
		Code: []Instr{
			{Op: OpSumV, A: 0, B: 1},          // reg0 = sum(view 1)
			{Op: OpDotV, A: 1, B: 1, C: 2},    // reg1 = dot(view 1, view 2)
			{Op: OpLoadAt, A: 1, B: 1, C: 0},  // reg1 = view1[regs[0]]
			{Op: OpStoreAt, A: 1, B: 0, C: 1}, // view1[regs[0]] = reg1
			{Op: OpHalt},
		},
		RegInit:   []float64{0, 0, 0},
		NCenter:   1,
		CenterReg: []int32{2},
		Refs: []Ref{
			{Matrix: "A", Binding: "a", ND: 1, Base: []int64{0}, Coeff: []int64{1}},
			{Matrix: "A", Binding: "v", Kind: RefView, ND: 1,
				Base: []int64{0}, Coeff: []int64{0}, HiBase: []int64{4}, HiCoeff: []int64{0}},
			{Matrix: "B", Binding: "r", Kind: RefView, ND: 2, Collapse: true,
				Base: []int64{0, 0}, Coeff: nil, HiBase: []int64{4, 1}, HiCoeff: nil},
		},
	}
}

// TestValidateViewRefRejections is TestValidateRejections for the view
// refs and reduction ops: each mutation breaks an invariant the vm's
// bindView/viewOff paths rely on without checking.
func TestValidateViewRefRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(p *Program)
	}{
		{"unknown_ref_kind", func(p *Program) { p.Refs[1].Kind = RefKind(9) }},
		{"cell_ref_with_view_bounds", func(p *Program) { p.Refs[0].HiBase = []int64{4} }},
		{"cell_ref_with_collapse", func(p *Program) { p.Refs[0].Collapse = true }},
		{"zero_dim_view", func(p *Program) {
			p.Refs[1].ND = 0
			p.Refs[1].Base = nil
			p.Refs[1].Coeff = nil
			p.Refs[1].HiBase = nil
			p.Refs[1].HiCoeff = nil
		}},
		{"hi_base_rank_mismatch", func(p *Program) { p.Refs[1].HiBase = []int64{4, 5} }},
		{"hi_coeff_length_mismatch", func(p *Program) { p.Refs[1].HiCoeff = []int64{0, 0} }},
		{"collapse_on_1d_view", func(p *Program) { p.Refs[1].Collapse = true }},
		{"sumv_on_cell_ref", func(p *Program) { p.Code[0].B = 0 }},
		{"sumv_ref_out_of_range", func(p *Program) { p.Code[0].B = 7 }},
		{"sumv_dest_out_of_range", func(p *Program) { p.Code[0].A = 33 }},
		{"dotv_on_2d_view", func(p *Program) { p.Refs[2].Collapse = false }},
		{"dotv_on_cell_ref", func(p *Program) { p.Code[1].C = 0 }},
		{"loadat_on_cell_ref", func(p *Program) { p.Code[2].B = 0 }},
		{"loadat_index_block_out_of_range", func(p *Program) { p.Code[2].C = 3 }},
		{"storeat_on_cell_ref", func(p *Program) { p.Code[3].A = 0 }},
		{"storeat_index_block_negative", func(p *Program) { p.Code[3].B = -1 }},
		{"storeat_src_out_of_range", func(p *Program) { p.Code[3].C = 55 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := validViewProgram()
			if err := p.Validate(); err != nil {
				t.Fatalf("baseline program invalid: %v", err)
			}
			tc.mutate(p)
			if err := p.Validate(); err == nil {
				t.Error("mutated program validated")
			}
		})
	}
}

// TestViewProgramRoundTrip proves view refs survive the gob round trip
// with kind, bounds, and collapse intact.
func TestViewProgramRoundTrip(t *testing.T) {
	in := map[int]*Program{1: validViewProgram()}
	payload, err := EncodePrograms(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodePrograms(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

// TestDecodeRejectsInvalidSetWhole proves one bad program poisons the
// whole set: warm-starting rules 0..k-1 while silently recompiling rule
// k would hide corruption, so the decoder refuses everything.
func TestDecodeRejectsInvalidSetWhole(t *testing.T) {
	good, bad := validProgram(), validProgram()
	bad.Code[4].A = 99 // jump target out of range
	payload, err := EncodePrograms(map[int]*Program{0: good, 1: bad})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePrograms(payload); err == nil {
		t.Error("set containing an invalid program decoded")
	}
}
