package jit

import (
	"petabricks/internal/pbc/analysis"
	"petabricks/internal/pbc/ast"
	"petabricks/internal/pbc/codegen"
	"petabricks/internal/pbc/symbolic"
)

// Compile lowers one analyzed rule into a bytecode Program, or reports
// why it is outside the lowerable fragment as a typed
// *codegen.Unsupported so the caller can fall back to the closure tier
// and surface the reason.
//
// The lowerable fragment is the closure tier's compilable fragment
// restricted to rules whose bound references have integer-affine
// center indices: scalar locals, cell reads and writes, arithmetic,
// comparisons, short-circuit logic, lazy conditionals, if/for control
// flow, the scalar builtins, and — over bound region/row/column/whole
// views whose bounds fold to affine forms at (transform, sizes,
// config) time — the sum and dot reductions plus direct .cell(...)
// indexed reads and writes. Every lowering decision mirrors
// compileRule/compileScalar in internal/pbc/interp so outputs stay
// bit-identical across tiers — evaluation order, error order,
// truncation, short-circuiting, eager view bounds checks, and lazy
// out-of-range cell handling included.
func Compile(res *analysis.Result, ri *analysis.RuleInfo, sizes map[string]int64) (p *Program, err error) {
	rule := ri.Rule.Name()
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, codegen.Unsup(rule, "panic", "%v", r)
		}
	}()
	if ri.Kind != analysis.RuleCell {
		return nil, codegen.Unsup(rule, "macro-rule", "")
	}
	if ri.Rule.RawBody != "" {
		return nil, codegen.Unsup(rule, "raw-body", "")
	}
	lo := &lowerer{
		res:    res,
		ri:     ri,
		rule:   rule,
		sizes:  sizes,
		consts: map[float64]int32{},
		cpool:  map[float64]int32{},
		p: &Program{
			Name:    res.Transform.Name + "/" + rule,
			NCenter: len(ri.CenterVars),
		},
	}
	root := newScope(nil)
	lo.p.CenterReg = make([]int32, len(ri.CenterVars))
	for d, v := range ri.CenterVars {
		lo.p.CenterReg[d] = -1
		if v != "" {
			r := lo.newReg()
			lo.p.CenterReg[d] = r
			root.define(v, lvar{kind: lvScalar, reg: r})
		}
	}
	refs := make([]*ast.RegionRef, 0, len(ri.Rule.To)+len(ri.Rule.From))
	refs = append(refs, ri.Rule.To...)
	refs = append(refs, ri.Rule.From...)
	for _, ref := range refs {
		if err := lo.addRef(ref, root); err != nil {
			return nil, err
		}
	}
	for _, s := range ri.Rule.Body {
		if err := lo.stmt(s, root); err != nil {
			return nil, err
		}
	}
	lo.emit(OpHalt, 0, 0, 0)
	lo.p.RegInit = lo.regInit
	return lo.p, nil
}

type lowerer struct {
	res     *analysis.Result
	ri      *analysis.RuleInfo
	rule    string
	sizes   map[string]int64
	p       *Program
	regInit []float64
	consts  map[float64]int32 // constant value → preloaded register
	cpool   map[float64]int32 // constant value → Consts pool index
}

type lvKind int

const (
	lvScalar lvKind = iota
	lvCell
	lvView
)

// lvar is a compile-time binding: a scalar register, a cell ref, or a
// view ref (vnd is the view's statically known post-collapse rank).
type lvar struct {
	kind lvKind
	reg  int32
	ref  int32
	vnd  int
}

type lscope struct {
	parent *lscope
	vars   map[string]lvar
}

func newScope(parent *lscope) *lscope { return &lscope{parent: parent, vars: map[string]lvar{}} }

func (s *lscope) lookup(name string) (lvar, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.vars[name]; ok {
			return v, true
		}
	}
	return lvar{}, false
}

func (s *lscope) define(name string, v lvar) { s.vars[name] = v }

func (lo *lowerer) newReg() int32 {
	r := int32(len(lo.regInit))
	lo.regInit = append(lo.regInit, 0)
	return r
}

// constReg returns a register preloaded with v via RegInit, so constants
// cost nothing per cell.
func (lo *lowerer) constReg(v float64) int32 {
	if r, ok := lo.consts[v]; ok {
		return r
	}
	r := int32(len(lo.regInit))
	lo.regInit = append(lo.regInit, v)
	lo.consts[v] = r
	return r
}

// cconst interns v in the OpConst pool (for registers that must be
// re-initialized at runtime, like loop guards).
func (lo *lowerer) cconst(v float64) int32 {
	if i, ok := lo.cpool[v]; ok {
		return i
	}
	i := int32(len(lo.p.Consts))
	lo.p.Consts = append(lo.p.Consts, v)
	lo.cpool[v] = i
	return i
}

func (lo *lowerer) emit(op Op, a, b, c int32) int {
	lo.p.Code = append(lo.p.Code, Instr{Op: op, A: a, B: b, C: c})
	return len(lo.p.Code) - 1
}

func (lo *lowerer) here() int32 { return int32(len(lo.p.Code)) }

func (lo *lowerer) patch(pc int, target int32) { lo.p.Code[pc].A = target }

func (lo *lowerer) unsup(construct, detailFmt string, args ...any) error {
	return codegen.Unsup(lo.rule, construct, detailFmt, args...)
}

// --- References -------------------------------------------------------------

// affForm is one folded affine bound: base + Σ coeff·center.
type affForm struct {
	base  int64
	coeff []int64
}

func (a affForm) plus(n int64) affForm { return affForm{a.base + n, a.coeff} }

// addRef validates one region reference the same way the closure tier's
// compileRef does, and lowers bound refs into affine Ref entries: cells
// become lazily range-checked single-offset RefCell refs; every other
// shape (whole matrix, row, column, region) becomes a RefView window
// with the closure tier's eager per-dimension [lo,hi) bounds checks.
// Unbound refs are validated but emit nothing: bindRefs skips slotless
// refs too, so their bounds are never checked at run time in any tier.
func (lo *lowerer) addRef(ref *ast.RegionRef, root *lscope) error {
	mi := lo.res.Matrices[ref.Matrix]
	if mi == nil {
		return lo.unsup("unknown-matrix", "%q", ref.Matrix)
	}
	dims := make([]int64, len(mi.Dims))
	for i, se := range mi.Dims {
		v, err := se.Eval(lo.sizes)
		if err != nil {
			return lo.unsup("non-affine-dims", "matrix %q", ref.Matrix)
		}
		dims[i] = v
	}
	bound := func(e ast.Expr) (affForm, error) {
		se, serr := analysis.ToSymbolic(e)
		if serr != nil {
			return affForm{}, lo.unsup("non-affine-index", "%s", ast.ExprString(e))
		}
		base, coeff, err := lo.affineOf(se, e)
		return affForm{base, coeff}, err
	}
	// Fold the ref into DSL-order lo/hi bounds, mirroring compileRef's
	// shapes exactly (shape violations are errNotCompilable there — the
	// whole rule runs on the AST interpreter either way, so which tier
	// rejects them never changes results).
	var lob, hib []affForm
	collapse := false
	switch ref.Kind {
	case ast.RegionAll:
		for _, ext := range dims {
			lob = append(lob, affForm{})
			hib = append(hib, affForm{base: ext})
		}
	case ast.RegionCell:
		for _, a := range ref.Args {
			ab, err := bound(a)
			if err != nil {
				return err
			}
			lob = append(lob, ab)
		}
	case ast.RegionRow, ast.RegionCol:
		if len(dims) != 2 || len(ref.Args) != 1 {
			return lo.unsup("region-shape", "%d-arg row/column on %d-dim %q", len(ref.Args), len(dims), ref.Matrix)
		}
		ab, err := bound(ref.Args[0])
		if err != nil {
			return err
		}
		collapse = true
		if ref.Kind == ast.RegionRow {
			lob = []affForm{{}, ab}
			hib = []affForm{{base: dims[0]}, ab.plus(1)}
		} else {
			lob = []affForm{ab, {}}
			hib = []affForm{ab.plus(1), {base: dims[1]}}
		}
	case ast.RegionRegion:
		nd := len(dims)
		if len(ref.Args) != 2*nd {
			return lo.unsup("region-shape", "%d-arg region on %d-dim %q", len(ref.Args), nd, ref.Matrix)
		}
		for d := 0; d < nd; d++ {
			loB, err := bound(ref.Args[d])
			if err != nil {
				return err
			}
			hiB, err := bound(ref.Args[nd+d])
			if err != nil {
				return err
			}
			lob = append(lob, loB)
			hib = append(hib, hiB)
		}
	default:
		return lo.unsup("region-kind", "%v", ref.Kind)
	}
	if ref.Binding == "" {
		return nil
	}
	nc := lo.p.NCenter
	fill := func(forms []affForm, nd int, base []int64, coeff *[]int64) {
		for d, ab := range forms {
			base[d] = ab.base
			for k, co := range ab.coeff {
				if co != 0 {
					if *coeff == nil {
						*coeff = make([]int64, nd*nc)
					}
					(*coeff)[d*nc+k] = co
				}
			}
		}
	}
	if ref.Kind == ast.RegionCell {
		nd := len(lob)
		r := Ref{Matrix: ref.Matrix, Binding: ref.Binding, ND: nd, Base: make([]int64, nd)}
		fill(lob, nd, r.Base, &r.Coeff)
		root.define(ref.Binding, lvar{kind: lvCell, ref: int32(len(lo.p.Refs))})
		lo.p.Refs = append(lo.p.Refs, r)
		return nil
	}
	nd := len(dims)
	r := Ref{
		Matrix: ref.Matrix, Binding: ref.Binding, ND: nd, Kind: RefView,
		Base: make([]int64, nd), HiBase: make([]int64, nd), Collapse: collapse,
	}
	fill(lob, nd, r.Base, &r.Coeff)
	fill(hib, nd, r.HiBase, &r.HiCoeff)
	vnd := nd
	if collapse {
		vnd = 1 // a collapsed 2-D row/column view is always exactly 1-D
	}
	root.define(ref.Binding, lvar{kind: lvView, ref: int32(len(lo.p.Refs)), vnd: vnd})
	lo.p.Refs = append(lo.p.Refs, r)
	return nil
}

// affineOf folds a symbolic index into base + Σ coeff·center with the
// same integer-coefficient requirement as the closure tier's
// affineBoundOf: flooring distributes over the center terms only when
// they contribute integers; fractional size terms fold into the base.
func (lo *lowerer) affineOf(se *symbolic.Expr, e ast.Expr) (int64, []int64, error) {
	aff, ok := se.Affine()
	if !ok {
		return 0, nil, lo.unsup("non-affine-index", "%s", ast.ExprString(e))
	}
	coeffs, rest := aff.Split(lo.ri.CenterVars)
	out := make([]int64, len(coeffs))
	for d, co := range coeffs {
		if co.IsZero() {
			continue
		}
		if !co.IsInt() {
			return 0, nil, lo.unsup("non-integer-coeff", "%s", ast.ExprString(e))
		}
		out[d] = co.Int()
	}
	base, err := rest.Expr().Eval(lo.sizes)
	if err != nil {
		return 0, nil, lo.unsup("non-affine-index", "%s", ast.ExprString(e))
	}
	return base, out, nil
}

// --- Statements -------------------------------------------------------------

func (lo *lowerer) stmts(list []ast.Stmt, sc *lscope) error {
	for _, s := range list {
		if err := lo.stmt(s, sc); err != nil {
			return err
		}
	}
	return nil
}

func (lo *lowerer) stmt(s ast.Stmt, sc *lscope) error {
	switch st := s.(type) {
	case *ast.Decl:
		src := lo.constReg(0)
		if st.Init != nil {
			r, err := lo.scalarRead(st.Init, sc)
			if err != nil {
				return err
			}
			src = r
		}
		reg := lo.newReg()
		if st.Type == "int" {
			lo.emit(OpTrunc, reg, src, 0)
		} else {
			lo.emit(OpMov, reg, src, 0)
		}
		sc.define(st.Name, lvar{kind: lvScalar, reg: reg})
		return nil
	case *ast.Assign:
		return lo.assign(st, sc)
	case *ast.IncDec:
		// ++/-- on a cell binding rebinds the name to a scalar in the
		// env world; registers cannot express that, so fall back.
		v, ok := sc.lookup(st.Name)
		if !ok || v.kind != lvScalar {
			return lo.unsup("incdec-target", "%q", st.Name)
		}
		one := lo.constReg(1)
		if st.Op == "--" {
			lo.emit(OpSub, v.reg, v.reg, one)
		} else {
			lo.emit(OpAdd, v.reg, v.reg, one)
		}
		return nil
	case *ast.If:
		rc, err := lo.scalarRead(st.Cond, sc)
		if err != nil {
			return err
		}
		jz := lo.emit(OpJZ, -1, rc, 0)
		if err := lo.stmts(st.Then, newScope(sc)); err != nil {
			return err
		}
		if len(st.Else) == 0 {
			lo.patch(jz, lo.here())
			return nil
		}
		jmp := lo.emit(OpJmp, -1, 0, 0)
		lo.patch(jz, lo.here())
		if err := lo.stmts(st.Else, newScope(sc)); err != nil {
			return err
		}
		lo.patch(jmp, lo.here())
		return nil
	case *ast.For:
		if st.Cond == nil {
			return lo.unsup("for-without-cond", "") // interpreter reports the error
		}
		scope := newScope(sc)
		if st.Init != nil {
			if err := lo.stmt(st.Init, scope); err != nil {
				return err
			}
		}
		guard := lo.newReg()
		lo.emit(OpConst, guard, lo.cconst(0), 0)
		loop := lo.here()
		rc, err := lo.scalarRead(st.Cond, scope)
		if err != nil {
			return err
		}
		jz := lo.emit(OpJZ, -1, rc, 0)
		if err := lo.stmts(st.Body, newScope(scope)); err != nil {
			return err
		}
		if st.Post != nil {
			if err := lo.stmt(st.Post, scope); err != nil {
				return err
			}
		}
		lo.emit(OpGuard, guard, 0, 0)
		lo.emit(OpJmp, loop, 0, 0)
		lo.patch(jz, lo.here())
		return nil
	case *ast.ExprStmt:
		// Bare names have no effect in the closure tier (the slot value
		// is produced and discarded without an out-of-range check), so
		// defined names lower to nothing; anything else evaluates for
		// its errors only.
		if id, ok := st.X.(*ast.Ident); ok {
			if _, ok := sc.lookup(id.Name); ok {
				return nil
			}
			if _, ok := lo.sizes[id.Name]; ok {
				return nil
			}
			return lo.unsup("undefined-name", "%q", id.Name)
		}
		_, err := lo.scalarRead(st.X, sc)
		return err
	case *ast.Return:
		return lo.unsup("return-statement", "") // interpreter owns the error
	}
	return lo.unsup("unknown-statement", "%T", s)
}

func (lo *lowerer) assign(st *ast.Assign, sc *lscope) error {
	switch lhs := st.LHS.(type) {
	case *ast.Ident:
		v, ok := sc.lookup(lhs.Name)
		if !ok {
			// Implicit local definition, as in execAssign.
			if st.Op != "=" {
				return lo.unsup("assign-op", "%q on undefined %q", st.Op, lhs.Name)
			}
			src, err := lo.scalarRead(st.RHS, sc)
			if err != nil {
				return err
			}
			reg := lo.newReg()
			lo.emit(OpMov, reg, src, 0)
			sc.define(lhs.Name, lvar{kind: lvScalar, reg: reg})
			return nil
		}
		switch v.kind {
		case lvCell:
			// RHS first, then the out-of-range check, matching the
			// closure tier's order.
			src, err := lo.scalarRead(st.RHS, sc)
			if err != nil {
				return err
			}
			switch st.Op {
			case "=":
				lo.emit(OpStore, v.ref, src, 0)
			case "+=":
				old := lo.newReg()
				lo.emit(OpLoad, old, v.ref, 0)
				lo.emit(OpAdd, old, old, src)
				lo.emit(OpStore, v.ref, old, 0)
			case "-=":
				old := lo.newReg()
				lo.emit(OpLoad, old, v.ref, 0)
				lo.emit(OpSub, old, old, src)
				lo.emit(OpStore, v.ref, old, 0)
			default:
				return lo.unsup("assign-op", "%q on cell %q", st.Op, lhs.Name)
			}
			return nil
		case lvScalar:
			src, err := lo.scalarRead(st.RHS, sc)
			if err != nil {
				return err
			}
			switch st.Op {
			case "=":
				lo.emit(OpMov, v.reg, src, 0)
			case "+=":
				lo.emit(OpAdd, v.reg, v.reg, src)
			case "-=":
				lo.emit(OpSub, v.reg, v.reg, src)
			default:
				return lo.unsup("assign-op", "%q", st.Op)
			}
			return nil
		case lvView:
			// Whole-region assignment (b = MergeSort(a)) copies a matrix
			// into the view in the closure tier; that stays its territory.
			return lo.unsup("region-assignment", "%q", lhs.Name)
		}
		return lo.unsup("assign-target", "%q", lhs.Name)
	case *ast.Index:
		v, ok := sc.lookup(lhs.Base)
		if !ok || v.kind != lvView {
			return lo.unsup("indexed-assignment", "%q", lhs.Base)
		}
		// RHS first, then indices, matching execAssign's order.
		src, err := lo.scalarRead(st.RHS, sc)
		if err != nil {
			return err
		}
		switch st.Op {
		case "=", "+=", "-=":
		default:
			return lo.unsup("assign-op", "%q on view %q", st.Op, lhs.Base)
		}
		idx, err := lo.indexRegs(lhs.Base, lhs.Args, v, sc)
		if err != nil {
			return err
		}
		switch st.Op {
		case "=":
			lo.emit(OpStoreAt, v.ref, idx, src)
		case "+=":
			old := lo.newReg()
			lo.emit(OpLoadAt, old, v.ref, idx)
			lo.emit(OpAdd, old, old, src)
			lo.emit(OpStoreAt, v.ref, idx, old)
		case "-=":
			old := lo.newReg()
			lo.emit(OpLoadAt, old, v.ref, idx)
			lo.emit(OpSub, old, old, src)
			lo.emit(OpStoreAt, v.ref, idx, old)
		}
		return nil
	}
	return lo.unsup("assign-target", "%T", st.LHS)
}

// indexRegs lowers a .cell(...) index list on a view binding into a
// block of consecutive registers (one per DSL dimension, as OpLoadAt
// and OpStoreAt expect) and returns the block's first register. Index
// expressions evaluate left to right — the closure tier's order — with
// truncation and bounds checks deferred to the op itself. A rank
// mismatch is a per-cell runtime error in the closure tier, so it
// falls back rather than lowering.
func (lo *lowerer) indexRegs(name string, args []ast.Expr, v lvar, sc *lscope) (int32, error) {
	if len(args) != v.vnd {
		return 0, lo.unsup("index-rank", "%d indices for %d-dim view %q", len(args), v.vnd, name)
	}
	base := int32(len(lo.regInit))
	for range args {
		lo.newReg()
	}
	for d, a := range args {
		r, err := lo.scalarRead(a, sc)
		if err != nil {
			return 0, err
		}
		lo.emit(OpMov, base+int32(d), r, 0)
	}
	return base, nil
}

// --- Expressions ------------------------------------------------------------

// scalarRead returns a register holding e's value at the current point
// in the instruction stream. Names and literals resolve to their live
// register with no code emitted (reads never mutate operand registers,
// so sharing is safe); other expressions evaluate into a fresh
// register.
func (lo *lowerer) scalarRead(e ast.Expr, sc *lscope) (int32, error) {
	switch x := e.(type) {
	case *ast.Num:
		return lo.constReg(x.Val), nil
	case *ast.Ident:
		if v, ok := sc.lookup(x.Name); ok {
			if v.kind == lvScalar {
				return v.reg, nil
			}
		} else if sv, ok := lo.sizes[x.Name]; ok {
			return lo.constReg(float64(sv)), nil
		}
	}
	dst := lo.newReg()
	if err := lo.scalarInto(e, sc, dst); err != nil {
		return 0, err
	}
	return dst, nil
}

// scalarInto evaluates e into dst. dst is always a fresh temporary
// (never a variable or constant register), so lazily-written forms like
// short-circuit logic may set it before their operands finish.
func (lo *lowerer) scalarInto(e ast.Expr, sc *lscope, dst int32) error {
	switch x := e.(type) {
	case *ast.Num:
		lo.emit(OpMov, dst, lo.constReg(x.Val), 0)
		return nil
	case *ast.Ident:
		if v, ok := sc.lookup(x.Name); ok {
			switch v.kind {
			case lvScalar:
				lo.emit(OpMov, dst, v.reg, 0)
			case lvCell:
				lo.emit(OpLoad, dst, v.ref, 0)
			case lvView:
				// A view used as a scalar succeeds at run time iff it
				// holds exactly one element (value.num) — a dynamic
				// property registers cannot express, so the closure tier
				// keeps it.
				return lo.unsup("view-scalar", "%q", x.Name)
			}
			return nil
		}
		if sv, ok := lo.sizes[x.Name]; ok {
			lo.emit(OpMov, dst, lo.constReg(float64(sv)), 0)
			return nil
		}
		return lo.unsup("undefined-name", "%q", x.Name) // interpreter owns the error
	case *ast.Unary:
		src, err := lo.scalarRead(x.X, sc)
		if err != nil {
			return err
		}
		if x.Op == "-" {
			lo.emit(OpNeg, dst, src, 0)
		} else {
			lo.emit(OpNot, dst, src, 0)
		}
		return nil
	case *ast.Binary:
		return lo.binary(x, sc, dst)
	case *ast.Cond:
		rc, err := lo.scalarRead(x.C, sc)
		if err != nil {
			return err
		}
		jz := lo.emit(OpJZ, -1, rc, 0)
		if err := lo.scalarInto(x.A, sc, dst); err != nil {
			return err
		}
		jmp := lo.emit(OpJmp, -1, 0, 0)
		lo.patch(jz, lo.here())
		if err := lo.scalarInto(x.B, sc, dst); err != nil {
			return err
		}
		lo.patch(jmp, lo.here())
		return nil
	case *ast.Call:
		return lo.call(x, sc, dst)
	case *ast.Index:
		v, ok := sc.lookup(x.Base)
		if !ok || v.kind != lvView {
			return lo.unsup("indexed-read", "%q", x.Base)
		}
		idx, err := lo.indexRegs(x.Base, x.Args, v, sc)
		if err != nil {
			return err
		}
		lo.emit(OpLoadAt, dst, v.ref, idx)
		return nil
	}
	return lo.unsup("unknown-expression", "%T", e)
}

func (lo *lowerer) binary(x *ast.Binary, sc *lscope, dst int32) error {
	switch x.Op {
	case "&&":
		l, err := lo.scalarRead(x.L, sc)
		if err != nil {
			return err
		}
		lo.emit(OpMov, dst, lo.constReg(0), 0)
		jz1 := lo.emit(OpJZ, -1, l, 0)
		r, err := lo.scalarRead(x.R, sc)
		if err != nil {
			return err
		}
		jz2 := lo.emit(OpJZ, -1, r, 0)
		lo.emit(OpMov, dst, lo.constReg(1), 0)
		end := lo.here()
		lo.patch(jz1, end)
		lo.patch(jz2, end)
		return nil
	case "||":
		l, err := lo.scalarRead(x.L, sc)
		if err != nil {
			return err
		}
		lo.emit(OpMov, dst, lo.constReg(1), 0)
		jnz1 := lo.emit(OpJNZ, -1, l, 0)
		r, err := lo.scalarRead(x.R, sc)
		if err != nil {
			return err
		}
		jnz2 := lo.emit(OpJNZ, -1, r, 0)
		lo.emit(OpMov, dst, lo.constReg(0), 0)
		end := lo.here()
		lo.patch(jnz1, end)
		lo.patch(jnz2, end)
		return nil
	}
	var op Op
	switch x.Op {
	case "+":
		op = OpAdd
	case "-":
		op = OpSub
	case "*":
		op = OpMul
	case "/":
		op = OpDiv
	case "%":
		op = OpMod
	case "<":
		op = OpLT
	case "<=":
		op = OpLE
	case ">":
		op = OpGT
	case ">=":
		op = OpGE
	case "==":
		op = OpEQ
	case "!=":
		op = OpNE
	default:
		return lo.unsup("operator", "%q", x.Op)
	}
	l, err := lo.scalarRead(x.L, sc)
	if err != nil {
		return err
	}
	r, err := lo.scalarRead(x.R, sc)
	if err != nil {
		return err
	}
	lo.emit(op, dst, l, r)
	return nil
}

// call lowers the scalar builtins. Reductions over views (sum, dot,
// copy), transform invocations, and arity mismatches (runtime errors in
// the interpreter tiers) all fall back.
func (lo *lowerer) call(x *ast.Call, sc *lscope, dst int32) error {
	unary := func(op Op) error {
		if len(x.Args) != 1 {
			return lo.unsup("builtin-arity", "%s with %d args", x.Fn, len(x.Args))
		}
		src, err := lo.scalarRead(x.Args[0], sc)
		if err != nil {
			return err
		}
		lo.emit(op, dst, src, 0)
		return nil
	}
	switch x.Fn {
	case "abs":
		return unary(OpAbs)
	case "sqrt":
		return unary(OpSqrt)
	case "floor":
		return unary(OpFloor)
	case "ceil":
		return unary(OpCeil)
	case "pow":
		if len(x.Args) != 2 {
			return lo.unsup("builtin-arity", "pow with %d args", len(x.Args))
		}
		a, err := lo.scalarRead(x.Args[0], sc)
		if err != nil {
			return err
		}
		b, err := lo.scalarRead(x.Args[1], sc)
		if err != nil {
			return err
		}
		lo.emit(OpPow, dst, a, b)
		return nil
	case "min", "max":
		if len(x.Args) < 1 {
			return lo.unsup("builtin-arity", "%s with no args", x.Fn)
		}
		op := OpMin
		if x.Fn == "max" {
			op = OpMax
		}
		// All arguments evaluate left-to-right before the fold, like the
		// closure tier's argument buffer.
		regs := make([]int32, len(x.Args))
		for i, a := range x.Args {
			r, err := lo.scalarRead(a, sc)
			if err != nil {
				return err
			}
			regs[i] = r
		}
		if len(regs) == 1 {
			lo.emit(OpMov, dst, regs[0], 0)
			return nil
		}
		lo.emit(op, dst, regs[0], regs[1])
		for _, r := range regs[2:] {
			lo.emit(op, dst, dst, r)
		}
		return nil
	case "sum":
		// Lowers over a view binding of any rank (OpSumV walks the
		// window in matrix.Walk's row-major order). Any other argument
		// shape — cell bindings, nested calls, arity mismatches — keeps
		// the closure tier's runtime coercions and errors.
		if len(x.Args) == 1 {
			if v, ok := lo.viewArg(x.Args[0], sc); ok {
				lo.emit(OpSumV, dst, v.ref, 0)
				return nil
			}
		}
		return lo.unsup("builtin", "%s needs a view", x.Fn)
	case "dot":
		// Lowers when both arguments are statically 1-D view bindings;
		// the length check stays a runtime error inside OpDotV, like the
		// interpreter's. A 2-D view argument falls back so the closure
		// tier can raise its runtime dimension error.
		if len(x.Args) == 2 {
			a, okA := lo.viewArg(x.Args[0], sc)
			b, okB := lo.viewArg(x.Args[1], sc)
			if okA && okB && a.vnd == 1 && b.vnd == 1 {
				lo.emit(OpDotV, dst, a.ref, b.ref)
				return nil
			}
		}
		return lo.unsup("builtin", "%s needs two vector views", x.Fn)
	case "copy":
		return lo.unsup("builtin", "%s needs a view", x.Fn)
	}
	return lo.unsup("transform-call", "%q", x.Fn)
}

// viewArg resolves a call argument that is a bare view binding.
func (lo *lowerer) viewArg(e ast.Expr, sc *lscope) (lvar, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return lvar{}, false
	}
	v, ok := sc.lookup(id.Name)
	if !ok || v.kind != lvView {
		return lvar{}, false
	}
	return v, true
}
