// Package jit is the third execution tier of the PetaBricks runtime: a
// register-based flat-bytecode VM plus a lowering pass (lower.go) that
// compiles rule bodies into contiguous instruction streams the way
// wazero's compiler engine sits beside its interpreter.
//
// Where the closure tier (internal/pbc/interp/compile.go) executes a
// tree of Go closures — one indirect call per statement and
// sub-expression — a jit program is a single []Instr walked by one
// dispatch switch: no interface calls, no per-cell slot rebinding, and
// zero allocations steady-state. Matrix cell bindings are pre-resolved
// to base+stride affine forms per (transform, sizes, config) at compile
// time, so per-cell addressing is a handful of integer multiply-adds
// into the matrix backing slice.
//
// The tier is semantics-preserving, never semantics-extending: rules
// outside the lowerable fragment fall back to the closure compiler (and
// from there to the AST interpreter) with a typed per-rule reason, so
// the jit only ever changes performance, never which programs run.
package jit

import (
	"fmt"
	"math"
	"strings"

	"petabricks/internal/matrix"
)

// Op is a bytecode opcode. The zero value is OpHalt so an accidentally
// zeroed instruction stops execution instead of corrupting state.
type Op uint8

const (
	// OpHalt ends the program (normal completion).
	OpHalt Op = iota
	// OpConst sets reg A from the constant pool: r[A] = consts[B].
	OpConst
	// OpMov copies registers: r[A] = r[B].
	OpMov
	// Arithmetic: r[A] = r[B] <op> r[C].
	OpAdd
	OpSub
	OpMul
	// OpDiv errors on a zero divisor, matching the interpreter.
	OpDiv
	// OpMod is math.Mod and errors on a zero divisor.
	OpMod
	// OpNeg: r[A] = -r[B].
	OpNeg
	// OpNot: r[A] = 1 if r[B] == 0 else 0.
	OpNot
	// Comparisons: r[A] = 1/0 from r[B] <op> r[C].
	OpLT
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
	// OpTrunc: r[A] = math.Trunc(r[B]) (int declarations).
	OpTrunc
	// Scalar builtins.
	OpAbs
	OpSqrt
	OpFloor
	OpCeil
	OpMin // r[A] = math.Min(r[B], r[C])
	OpMax // r[A] = math.Max(r[B], r[C])
	OpPow // r[A] = math.Pow(r[B], r[C])
	// OpLoad reads the cell ref B's current cell: r[A] = data[off].
	// Errors if the cell is out of range (off < 0), matching the lazy
	// cell-access semantics of the interpreter tiers.
	OpLoad
	// OpStore writes r[B] into cell ref A's current cell.
	OpStore
	// OpJmp jumps to pc A unconditionally.
	OpJmp
	// OpJZ jumps to pc A when r[B] == 0; OpJNZ when r[B] != 0.
	OpJZ
	OpJNZ
	// OpGuard increments the loop counter r[A] and errors past the
	// interpreter's runaway-loop bound (10^8 iterations; exact in
	// float64 far beyond that).
	OpGuard
	// View ops. They operate on refs of Kind RefView, whose window
	// (base offset, row-major extents and strides) was resolved and
	// eagerly bounds-checked by bindView at the top of RunCell.
	//
	// OpSumV: r[A] = row-major sum of every element of view ref B,
	// the same element order (last index fastest) and accumulation
	// (acc starts at 0, one add per element) as matrix.Walk under the
	// interpreter's sum builtin, so results are bit-identical.
	OpSumV
	// OpDotV: r[A] = dot product of 1-D view refs B and C, ascending,
	// acc += b[k]*c[k]; errors on a length mismatch like the
	// interpreter's dot builtin.
	OpDotV
	// OpLoadAt reads one element of view ref B by explicit indices:
	// registers C..C+nd-1 hold the DSL-order indices; each is
	// truncated and bounds-checked against the view in row-major
	// order, panicking exactly like matrix.Get on violation (an
	// explicit bad index is a program bug in every tier, not a lazy
	// cell miss). r[A] = element.
	OpLoadAt
	// OpStoreAt writes r[C] into view ref A at the DSL-order indices
	// held in registers B..B+nd-1, with OpLoadAt's checking.
	OpStoreAt
)

var opNames = [...]string{
	OpHalt: "halt", OpConst: "const", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpNeg: "neg", OpNot: "not",
	OpLT: "lt", OpLE: "le", OpGT: "gt", OpGE: "ge", OpEQ: "eq", OpNE: "ne",
	OpTrunc: "trunc", OpAbs: "abs", OpSqrt: "sqrt", OpFloor: "floor", OpCeil: "ceil",
	OpMin: "min", OpMax: "max", OpPow: "pow",
	OpLoad: "load", OpStore: "store",
	OpJmp: "jmp", OpJZ: "jz", OpJNZ: "jnz", OpGuard: "guard",
	OpSumV: "sumv", OpDotV: "dotv", OpLoadAt: "loadat", OpStoreAt: "storeat",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one fixed-width instruction; A is the destination register
// (or jump target / ref index), B and C are operands.
type Instr struct {
	Op      Op
	A, B, C int32
}

// RefKind distinguishes single-cell refs from bound region views.
type RefKind uint8

const (
	// RefCell is a single-cell binding resolved to one flat offset per
	// center (lazily range-checked: only errors if the body reads it).
	RefCell RefKind = iota
	// RefView is a bound region/row/column/whole-matrix view: a
	// [lo,hi) window per dimension, eagerly bounds-checked at every
	// cell exactly like the closure tier's bindRefs.
	RefView
)

// Ref is one bound reference of a rule, with its per-dimension affine
// index forms folded at compile time: bound d of the ref is
// Base[d] + Σ_k Coeff[d*NCenter+k] · center[k], with size-variable
// contributions already evaluated into Base. For RefCell that is the
// cell's coordinate; for RefView it is the window's inclusive lower
// bound, with HiBase/HiCoeff giving the exclusive upper bound the same
// way.
type Ref struct {
	Matrix  string
	Binding string
	ND      int
	Base    []int64
	Coeff   []int64 // len ND*NCenter; nil when no center dependence
	Kind    RefKind
	HiBase  []int64 // RefView only: upper-bound bases, len ND
	HiCoeff []int64 // RefView only: len ND*NCenter; nil when constant
	// Collapse mirrors the closure tier's row/column handling: after
	// binding, unit dimensions are dropped (matrix.CollapseUnitDims),
	// which for the only emitted shape — a 2-D row or column view —
	// always leaves exactly one dimension.
	Collapse bool
}

// Program is one rule body lowered to bytecode. It is immutable after
// compilation and shared across frames, invocations, and WithConfig
// views; all mutable state lives in Frame.
type Program struct {
	Name string // "Transform/rule k" for diagnostics
	Code []Instr
	// Consts is the OpConst pool (runtime re-initialization, e.g. loop
	// guards); RegInit is the initial register file, with literal and
	// folded constants preloaded so steady-state cells never re-load
	// them.
	Consts    []float64
	RegInit   []float64
	NCenter   int
	CenterReg []int32 // register per center dimension; -1 unnamed
	Refs      []Ref
}

// NRegs is the register-file size.
func (p *Program) NRegs() int { return len(p.RegInit) }

// Disassemble renders the instruction stream for diagnostics and tests.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for pc, in := range p.Code {
		fmt.Fprintf(&b, "%3d: %-6s %d %d %d\n", pc, in.Op, in.A, in.B, in.C)
	}
	return b.String()
}

// refDim is the specialized per-dimension index form used when a
// dimension depends on at most one center variable (the overwhelmingly
// common shape): the cell's coordinate is base + coeff·center[k], valid
// while 0 ≤ coord < size. k, coeff, base come from the program; size
// and stride from the bound matrix view.
type refDim struct {
	k      int32 // center-var index feeding this dim; -1 constant
	coeff  int64
	base   int64
	size   int64
	stride int64
}

// refBind is a frame's live binding of one ref: the raw backing slice
// plus DSL-dimension-order strides and sizes resolved from the bound
// matrix view at frame-bind time (inputs may be arbitrary strided
// views, so none of this can be folded at compile time).
type refBind struct {
	data    []float64
	dims    []refDim // single-center-var fast form; nil → general/view form
	strides []int
	sizes   []int64
	base    int
	off     int // flat offset of the current cell; -1 out of range
	// RefView state, rebuilt by bindView each cell: the window's flat
	// base offset, post-collapse rank, and row-major extents/strides.
	voff    int
	vnd     int
	vext    []int64
	vstride []int
}

// Frame is the per-worker execution state of one program: the register
// file and the resolved cell refs. Frames are pooled by the interpreter
// and rebound per invocation; RunCell allocates nothing.
type Frame struct {
	prog *Program
	regs []float64
	refs []refBind
}

// NewFrame allocates a frame; bind every ref before RunCell.
func (p *Program) NewFrame() *Frame {
	f := &Frame{
		prog: p,
		regs: append([]float64(nil), p.RegInit...),
		refs: make([]refBind, len(p.Refs)),
	}
	for i := range p.Refs {
		r := &p.Refs[i]
		f.refs[i].strides = make([]int, r.ND)
		f.refs[i].sizes = make([]int64, r.ND)
		if r.Kind == RefView {
			f.refs[i].vext = make([]int64, r.ND)
			f.refs[i].vstride = make([]int, r.ND)
		} else {
			f.refs[i].dims = fastDims(r, p.NCenter)
		}
	}
	return f
}

// fastDims derives the single-center-var per-dimension form of a ref,
// or nil when some dimension mixes several center variables (the
// general affine path handles those).
func fastDims(r *Ref, nc int) []refDim {
	dims := make([]refDim, r.ND)
	for d := 0; d < r.ND; d++ {
		dm := &dims[d]
		dm.k = -1
		dm.base = r.Base[d]
		if r.Coeff == nil {
			continue
		}
		for k, co := range r.Coeff[d*nc : (d+1)*nc] {
			if co == 0 {
				continue
			}
			if dm.k >= 0 {
				return nil
			}
			dm.k, dm.coeff = int32(k), co
		}
	}
	return dims
}

// BindMatrix (re)binds ref i to a matrix view, reversing row-major
// metadata into DSL dimension order once per invocation.
func (f *Frame) BindMatrix(i int, m *matrix.Matrix) {
	rb := &f.refs[i]
	nd := f.prog.Refs[i].ND
	rb.data = m.Backing()
	rb.base = m.Offset()
	for d := 0; d < nd; d++ {
		rd := nd - 1 - d
		rb.strides[d] = m.Stride(rd)
		rb.sizes[d] = int64(m.Size(rd))
		if rb.dims != nil {
			rb.dims[d].stride = int64(m.Stride(rd))
			rb.dims[d].size = int64(m.Size(rd))
		}
	}
}

var (
	errDivZero = fmt.Errorf("jit: division by zero")
	errModZero = fmt.Errorf("jit: modulo by zero")
	errRunaway = fmt.Errorf("jit: runaway for loop")
	errDotLen  = fmt.Errorf("jit: dot needs equal-length vectors")
)

func (f *Frame) oob(ref int32) error {
	return fmt.Errorf("jit: %s: cell binding %q out of range", f.prog.Name, f.prog.Refs[ref].Binding)
}

// RunCell resolves every ref at the given center and executes the
// program. A cell ref whose index falls outside its matrix gets
// off = -1 and only errors if the body touches it; a view ref's window
// is eagerly range-checked here, erroring before any of the body runs —
// both matching bindRefs in the closure tier, in the same ref order (To
// bindings before From). center may be nil when NCenter is 0.
func (f *Frame) RunCell(center []int64) error {
	p := f.prog
	for d, r := range p.CenterReg {
		if r >= 0 {
			f.regs[r] = float64(center[d])
		}
	}
	nc := p.NCenter
	for i := range f.refs {
		rb := &f.refs[i]
		if rb.dims != nil {
			off := int64(rb.base)
			for j := range rb.dims {
				dm := &rb.dims[j]
				v := dm.base
				if dm.k >= 0 {
					v += dm.coeff * center[dm.k]
				}
				if uint64(v) >= uint64(dm.size) {
					off = -1
					break
				}
				off += v * dm.stride
			}
			rb.off = int(off)
			continue
		}
		r := &p.Refs[i]
		if r.Kind == RefView {
			if err := f.bindView(r, rb, center); err != nil {
				return err
			}
			continue
		}
		off := rb.base
		for d := 0; d < r.ND; d++ {
			v := r.Base[d]
			if r.Coeff != nil {
				for k, co := range r.Coeff[d*nc : (d+1)*nc] {
					if co != 0 {
						v += co * center[k]
					}
				}
			}
			if v < 0 || v >= rb.sizes[d] {
				off = -1
				break
			}
			off += int(v) * rb.strides[d]
		}
		rb.off = off
	}
	return f.run()
}

// bindView resolves one view ref's window at the current center:
// per-dimension affine lo/hi bounds, the closure tier's eager range
// check in the same DSL-dimension order, then the same unit-dimension
// drop matrix.CollapseUnitDims performs for row/column views. For the
// only collapsing shape the lowering emits — a 2-D row or column — the
// result is always exactly 1-D.
func (f *Frame) bindView(r *Ref, rb *refBind, center []int64) error {
	nd, nc := r.ND, f.prog.NCenter
	off := rb.base
	for d := 0; d < nd; d++ {
		lo, hi := r.Base[d], r.HiBase[d]
		if r.Coeff != nil {
			for k, co := range r.Coeff[d*nc : (d+1)*nc] {
				if co != 0 {
					lo += co * center[k]
				}
			}
		}
		if r.HiCoeff != nil {
			for k, co := range r.HiCoeff[d*nc : (d+1)*nc] {
				if co != 0 {
					hi += co * center[k]
				}
			}
		}
		if lo < 0 || hi > rb.sizes[d] || lo > hi {
			return fmt.Errorf("jit: %s binding %s: view [%d,%d) out of range [0,%d)",
				f.prog.Name, r.Binding, lo, hi, rb.sizes[d])
		}
		off += int(lo) * rb.strides[d]
		rd := nd - 1 - d // reverse DSL order to row-major
		rb.vext[rd] = hi - lo
		rb.vstride[rd] = rb.strides[d]
	}
	w := 0
	if r.Collapse {
		for d := 0; d < nd; d++ {
			if rb.vext[d] == 1 && (nd-d > 1 || w > 0) {
				continue
			}
			rb.vext[w] = rb.vext[d]
			rb.vstride[w] = rb.vstride[d]
			w++
		}
	} else {
		w = nd
	}
	rb.vnd = w
	rb.voff = off
	return nil
}

// sumDims accumulates a row-major walk of a strided window, last index
// fastest — matrix.Walk's element order, so float adds associate
// identically to the interpreter's sum builtin.
func sumDims(data []float64, off int, ext []int64, stride []int, acc float64) float64 {
	n := int(ext[0])
	if len(ext) == 1 {
		if st := stride[0]; st != 1 {
			for k := 0; k < n; k++ {
				acc += data[off]
				off += st
			}
		} else if n > 0 {
			for _, v := range data[off : off+n] {
				acc += v
			}
		}
		return acc
	}
	for j := 0; j < n; j++ {
		acc = sumDims(data, off+j*stride[0], ext[1:], stride[1:], acc)
	}
	return acc
}

// viewOff flattens the vnd DSL-order indices held in registers
// base..base+vnd-1 into a backing offset, truncating and range-checking
// each in row-major dimension order with the exact panic matrix.Get
// raises: an explicit out-of-range index is a program bug in every
// tier, unlike the lazily tolerated cell-binding miss.
func (f *Frame) viewOff(rb *refBind, base int32) int {
	n := rb.vnd
	off := rb.voff
	for j := 0; j < n; j++ {
		iv := int(f.regs[int(base)+n-1-j])
		if iv < 0 || iv >= int(rb.vext[j]) {
			panic(fmt.Sprintf("matrix: index %d out of range [0,%d) in dim %d", iv, rb.vext[j], j))
		}
		off += iv * rb.vstride[j]
	}
	return off
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// run is the dispatch loop. Malformed programs (bad register or ref
// indices) panic via the usual slice bounds checks; the lowering never
// emits them, and the interpreter's recover guard around rule
// compilation does not extend here by design — an invalid program is a
// compiler bug, not a program error.
func (f *Frame) run() error {
	p := f.prog
	code := p.Code
	regs := f.regs
	for pc := 0; ; pc++ {
		in := code[pc]
		switch in.Op {
		case OpHalt:
			return nil
		case OpConst:
			regs[in.A] = p.Consts[in.B]
		case OpMov:
			regs[in.A] = regs[in.B]
		case OpAdd:
			regs[in.A] = regs[in.B] + regs[in.C]
		case OpSub:
			regs[in.A] = regs[in.B] - regs[in.C]
		case OpMul:
			regs[in.A] = regs[in.B] * regs[in.C]
		case OpDiv:
			r := regs[in.C]
			if r == 0 {
				return errDivZero
			}
			regs[in.A] = regs[in.B] / r
		case OpMod:
			r := regs[in.C]
			if r == 0 {
				return errModZero
			}
			regs[in.A] = math.Mod(regs[in.B], r)
		case OpNeg:
			regs[in.A] = -regs[in.B]
		case OpNot:
			regs[in.A] = b2f(regs[in.B] == 0)
		case OpLT:
			regs[in.A] = b2f(regs[in.B] < regs[in.C])
		case OpLE:
			regs[in.A] = b2f(regs[in.B] <= regs[in.C])
		case OpGT:
			regs[in.A] = b2f(regs[in.B] > regs[in.C])
		case OpGE:
			regs[in.A] = b2f(regs[in.B] >= regs[in.C])
		case OpEQ:
			regs[in.A] = b2f(regs[in.B] == regs[in.C])
		case OpNE:
			regs[in.A] = b2f(regs[in.B] != regs[in.C])
		case OpTrunc:
			regs[in.A] = math.Trunc(regs[in.B])
		case OpAbs:
			regs[in.A] = math.Abs(regs[in.B])
		case OpSqrt:
			regs[in.A] = math.Sqrt(regs[in.B])
		case OpFloor:
			regs[in.A] = math.Floor(regs[in.B])
		case OpCeil:
			regs[in.A] = math.Ceil(regs[in.B])
		case OpMin:
			regs[in.A] = math.Min(regs[in.B], regs[in.C])
		case OpMax:
			regs[in.A] = math.Max(regs[in.B], regs[in.C])
		case OpPow:
			regs[in.A] = math.Pow(regs[in.B], regs[in.C])
		case OpLoad:
			rb := &f.refs[in.B]
			if rb.off < 0 {
				return f.oob(in.B)
			}
			regs[in.A] = rb.data[rb.off]
		case OpStore:
			rb := &f.refs[in.A]
			if rb.off < 0 {
				return f.oob(in.A)
			}
			rb.data[rb.off] = regs[in.B]
		case OpJmp:
			pc = int(in.A) - 1
		case OpJZ:
			if regs[in.B] == 0 {
				pc = int(in.A) - 1
			}
		case OpJNZ:
			if regs[in.B] != 0 {
				pc = int(in.A) - 1
			}
		case OpGuard:
			regs[in.A]++
			if regs[in.A] > 100_000_000 {
				return errRunaway
			}
		case OpSumV:
			rb := &f.refs[in.B]
			acc := 0.0
			if rb.vnd == 1 {
				// The common reduction shape: one strided run, with a
				// range loop when the window is contiguous.
				n := int(rb.vext[0])
				if st := rb.vstride[0]; st != 1 {
					o := rb.voff
					for k := 0; k < n; k++ {
						acc += rb.data[o]
						o += st
					}
				} else if n > 0 {
					for _, v := range rb.data[rb.voff : rb.voff+n] {
						acc += v
					}
				}
			} else {
				acc = sumDims(rb.data, rb.voff, rb.vext[:rb.vnd], rb.vstride[:rb.vnd], 0)
			}
			regs[in.A] = acc
		case OpDotV:
			rl := &f.refs[in.B]
			rr := &f.refs[in.C]
			if rl.vext[0] != rr.vext[0] {
				return errDotLen
			}
			n := int(rl.vext[0])
			acc := 0.0
			if rl.vstride[0] == 1 && rr.vstride[0] == 1 && n > 0 {
				dl := rl.data[rl.voff : rl.voff+n]
				dr := rr.data[rr.voff : rr.voff+n]
				for k, v := range dl {
					acc += v * dr[k]
				}
			} else {
				ol, or := rl.voff, rr.voff
				sl, sr := rl.vstride[0], rr.vstride[0]
				for k := 0; k < n; k++ {
					acc += rl.data[ol] * rr.data[or]
					ol += sl
					or += sr
				}
			}
			regs[in.A] = acc
		case OpLoadAt:
			rb := &f.refs[in.B]
			regs[in.A] = rb.data[f.viewOff(rb, in.C)]
		case OpStoreAt:
			rb := &f.refs[in.A]
			rb.data[f.viewOff(rb, in.B)] = regs[in.C]
		default:
			return fmt.Errorf("jit: %s: bad opcode %s at pc %d", p.Name, in.Op, pc)
		}
	}
}
