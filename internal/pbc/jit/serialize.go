package jit

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Programs are the one compiled artifact that persists to disk: unlike
// the closure tier (Go closures) and execution plans (analysis
// pointers), a Program is plain exported data, so a gob round-trip
// reproduces it exactly. The unit stored is a whole transform's program
// set — rule index → bytecode — because warm-starting half a transform
// would still pay the lowering pass for the other half.

// EncodePrograms serializes a transform's jit program set (rule index →
// program) for the artifact disk tier.
func EncodePrograms(progs map[int]*Program) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(progs); err != nil {
		return nil, fmt.Errorf("jit: encoding programs: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodePrograms deserializes a program set and validates every program
// before returning it. Validation is not optional: the VM dispatch loop
// intentionally has no bounds checks (see run), so a program that
// decoded cleanly from a tampered or torn file could otherwise index
// outside its register file or jump past its code. A set that fails
// validation is rejected whole.
func DecodePrograms(payload []byte) (map[int]*Program, error) {
	var progs map[int]*Program
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&progs); err != nil {
		return nil, fmt.Errorf("jit: decoding programs: %w", err)
	}
	for ri, p := range progs {
		if p == nil {
			return nil, fmt.Errorf("jit: rule %d: nil program", ri)
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("jit: rule %d: %w", ri, err)
		}
	}
	return progs, nil
}

// Validate checks every structural invariant the VM relies on instead
// of bounds checks: register, constant, and ref operands in range for
// their opcode; jump targets inside the code; a terminal OpHalt so
// straight-line execution cannot run off the end; and ref/center shapes
// consistent with NCenter. Freshly lowered programs satisfy it by
// construction; disk-loaded programs must prove it.
func (p *Program) Validate() error {
	nregs := len(p.RegInit)
	ncode := len(p.Code)
	if ncode == 0 {
		return fmt.Errorf("%s: empty code", p.Name)
	}
	if p.Code[ncode-1].Op != OpHalt {
		return fmt.Errorf("%s: last instruction is %s, want halt", p.Name, p.Code[ncode-1].Op)
	}
	if p.NCenter < 0 || len(p.CenterReg) != p.NCenter {
		return fmt.Errorf("%s: %d center regs for %d center dims", p.Name, len(p.CenterReg), p.NCenter)
	}
	for d, r := range p.CenterReg {
		if r < -1 || int(r) >= nregs {
			return fmt.Errorf("%s: center dim %d register %d out of range", p.Name, d, r)
		}
	}
	for i := range p.Refs {
		r := &p.Refs[i]
		if r.ND < 0 || len(r.Base) != r.ND {
			return fmt.Errorf("%s: ref %d: %d base terms for %d dims", p.Name, i, len(r.Base), r.ND)
		}
		if r.Coeff != nil && len(r.Coeff) != r.ND*p.NCenter {
			return fmt.Errorf("%s: ref %d: %d coeffs, want %d", p.Name, i, len(r.Coeff), r.ND*p.NCenter)
		}
		switch r.Kind {
		case RefCell:
			if len(r.HiBase) != 0 || len(r.HiCoeff) != 0 || r.Collapse {
				return fmt.Errorf("%s: ref %d: cell ref carries view bounds", p.Name, i)
			}
		case RefView:
			if r.ND < 1 {
				return fmt.Errorf("%s: ref %d: %d-dim view", p.Name, i, r.ND)
			}
			if len(r.HiBase) != r.ND {
				return fmt.Errorf("%s: ref %d: %d hi terms for %d dims", p.Name, i, len(r.HiBase), r.ND)
			}
			if r.HiCoeff != nil && len(r.HiCoeff) != r.ND*p.NCenter {
				return fmt.Errorf("%s: ref %d: %d hi coeffs, want %d", p.Name, i, len(r.HiCoeff), r.ND*p.NCenter)
			}
			// Collapsing is only emitted for 2-D row/column views, the
			// one shape whose post-collapse rank is statically 1 — the
			// rank the register-block operands of OpLoadAt/OpStoreAt and
			// OpDotV's 1-D requirement were checked against.
			if r.Collapse && r.ND != 2 {
				return fmt.Errorf("%s: ref %d: collapse on %d-dim view", p.Name, i, r.ND)
			}
		default:
			return fmt.Errorf("%s: ref %d: unknown kind %d", p.Name, i, r.Kind)
		}
	}
	reg := func(pc int, v int32) error {
		if v < 0 || int(v) >= nregs {
			return fmt.Errorf("%s: pc %d: register %d out of range [0,%d)", p.Name, pc, v, nregs)
		}
		return nil
	}
	jump := func(pc int, v int32) error {
		if v < 0 || int(v) >= ncode {
			return fmt.Errorf("%s: pc %d: jump target %d out of range [0,%d)", p.Name, pc, v, ncode)
		}
		return nil
	}
	refKind := func(pc int, v int32, kind RefKind) error {
		if v < 0 || int(v) >= len(p.Refs) {
			return fmt.Errorf("%s: pc %d: ref %d out of range [0,%d)", p.Name, pc, v, len(p.Refs))
		}
		if p.Refs[v].Kind != kind {
			return fmt.Errorf("%s: pc %d: ref %d has kind %d, want %d", p.Name, pc, v, p.Refs[v].Kind, kind)
		}
		return nil
	}
	ref := func(pc int, v int32) error { return refKind(pc, v, RefCell) }
	// staticVND is a view ref's post-collapse rank (collapse is only
	// valid on 2-D views, which always collapse to 1-D).
	staticVND := func(v int32) int {
		if p.Refs[v].Collapse {
			return 1
		}
		return p.Refs[v].ND
	}
	// regBlock checks the vnd consecutive index registers starting at v.
	regBlock := func(pc int, v int32, n int) error {
		if v < 0 || int(v)+n > nregs {
			return fmt.Errorf("%s: pc %d: register block [%d,%d) out of range [0,%d)", p.Name, pc, v, int(v)+n, nregs)
		}
		return nil
	}
	for pc, in := range p.Code {
		var err error
		switch in.Op {
		case OpHalt:
		case OpConst:
			if err = reg(pc, in.A); err == nil {
				if in.B < 0 || int(in.B) >= len(p.Consts) {
					err = fmt.Errorf("%s: pc %d: constant %d out of range [0,%d)", p.Name, pc, in.B, len(p.Consts))
				}
			}
		case OpMov, OpNeg, OpNot, OpTrunc, OpAbs, OpSqrt, OpFloor, OpCeil:
			if err = reg(pc, in.A); err == nil {
				err = reg(pc, in.B)
			}
		case OpAdd, OpSub, OpMul, OpDiv, OpMod,
			OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE,
			OpMin, OpMax, OpPow:
			if err = reg(pc, in.A); err == nil {
				if err = reg(pc, in.B); err == nil {
					err = reg(pc, in.C)
				}
			}
		case OpLoad:
			if err = reg(pc, in.A); err == nil {
				err = ref(pc, in.B)
			}
		case OpStore:
			if err = ref(pc, in.A); err == nil {
				err = reg(pc, in.B)
			}
		case OpJmp:
			err = jump(pc, in.A)
		case OpJZ, OpJNZ:
			if err = jump(pc, in.A); err == nil {
				err = reg(pc, in.B)
			}
		case OpGuard:
			err = reg(pc, in.A)
		case OpSumV:
			if err = reg(pc, in.A); err == nil {
				err = refKind(pc, in.B, RefView)
			}
		case OpDotV:
			if err = reg(pc, in.A); err == nil {
				if err = refKind(pc, in.B, RefView); err == nil {
					err = refKind(pc, in.C, RefView)
				}
			}
			if err == nil && (staticVND(in.B) != 1 || staticVND(in.C) != 1) {
				err = fmt.Errorf("%s: pc %d: dotv over non-1-D views", p.Name, pc)
			}
		case OpLoadAt:
			if err = reg(pc, in.A); err == nil {
				if err = refKind(pc, in.B, RefView); err == nil {
					err = regBlock(pc, in.C, staticVND(in.B))
				}
			}
		case OpStoreAt:
			if err = refKind(pc, in.A, RefView); err == nil {
				if err = regBlock(pc, in.B, staticVND(in.A)); err == nil {
					err = reg(pc, in.C)
				}
			}
		default:
			err = fmt.Errorf("%s: pc %d: unknown opcode %d", p.Name, pc, uint8(in.Op))
		}
		if err != nil {
			return err
		}
	}
	return nil
}
