package lexer

import (
	"testing"

	"petabricks/internal/pbc/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	out := make([]token.Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestKeywordsAndIdents(t *testing.T) {
	got := kinds(t, "transform Foo from to through where tunable x")
	want := []token.Kind{
		token.KwTransform, token.IDENT, token.KwFrom, token.KwTo,
		token.KwThrough, token.KwWhere, token.KwTunable, token.IDENT, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	got := kinds(t, "= == != < <= > >= + += ++ - -= -- * / % && || ! ? : . ..")
	want := []token.Kind{
		token.Assign, token.Eq, token.Neq, token.LAngle, token.Leq,
		token.RAngle, token.Geq, token.Plus, token.PlusAssign, token.PlusPlus,
		token.Minus, token.MinusAssign, token.MinusMinus, token.Star,
		token.Slash, token.Percent, token.AndAnd, token.OrOr, token.Not,
		token.Question, token.Colon, token.Dot, token.DotDot, token.EOF,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumbersAndRanges(t *testing.T) {
	toks, err := Lex("0..n 3.5 1e3 12")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.NUMBER || toks[0].Lexeme != "0" {
		t.Fatalf("tok0 = %v", toks[0])
	}
	if toks[1].Kind != token.DotDot {
		t.Fatalf("tok1 = %v", toks[1])
	}
	if toks[3].Lexeme != "3.5" || toks[4].Lexeme != "1e3" || toks[5].Lexeme != "12" {
		t.Fatalf("numbers = %v %v %v", toks[3], toks[4], toks[5])
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "a // line comment\n b /* block\n comment */ c")
	want := []token.Kind{token.IDENT, token.IDENT, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestRawEscape(t *testing.T) {
	toks, err := Lex("%{ raw c++ %%code }% x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.RAWCPP || toks[0].Lexeme != " raw c++ %%code " {
		t.Fatalf("raw = %v %q", toks[0].Kind, toks[0].Lexeme)
	}
}

func TestPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("a pos = %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("b pos = %v", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"#", "%{ open", "/* open", "@", "&x", "|x"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}
