package lexer

import (
	"strings"
	"testing"

	"petabricks/internal/pbc/token"
)

// FuzzLex checks the lexer on arbitrary byte soup: it must never panic,
// must terminate, and must either produce an EOF-terminated stream with
// monotonically sane positions or return a positioned *Error.
func FuzzLex(f *testing.F) {
	f.Add("transform T from A[n] to B[n] { to (B b) from (A a) { b = a; } }")
	f.Add("a + b // comment\n/* block */ c")
	f.Add("%{ raw c++ }% 0..n 1.5e-3 <= >= == != && || ++ -- += -=")
	f.Add("%{ unterminated")
	f.Add("/* unterminated")
	f.Add("#$@\x00\xff")
	f.Add(strings.Repeat("0..", 50))
	f.Add("1.2.3..4 e9 2e 2e+ 2e+1")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err != nil {
			le, ok := err.(*Error)
			if !ok {
				t.Fatalf("Lex error is %T, want *lexer.Error: %v", err, err)
			}
			if le.Pos.Line < 1 || le.Pos.Col < 1 {
				t.Fatalf("lex error with unpositioned location %v: %v", le.Pos, le)
			}
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != token.EOF {
			t.Fatalf("token stream not EOF-terminated: %v", toks)
		}
		lines := strings.Count(src, "\n") + 1
		prev := token.Pos{Line: 1, Col: 1}
		for i, tok := range toks {
			if tok.Kind != token.EOF && tok.Lexeme == "" && tok.Kind != token.RAWCPP {
				t.Fatalf("token %d (%v) has empty lexeme", i, tok.Kind)
			}
			p := tok.Pos
			if p.Line < 1 || p.Col < 1 || p.Line > lines+1 {
				t.Fatalf("token %d (%v) has position %v outside a %d-line input", i, tok.Kind, p, lines)
			}
			if p.Line < prev.Line || (p.Line == prev.Line && p.Col < prev.Col) {
				t.Fatalf("token %d (%v) at %v precedes previous token at %v", i, tok.Kind, p, prev)
			}
			prev = p
		}
		// Lexing is a pure function of the source.
		again, err := Lex(src)
		if err != nil || len(again) != len(toks) {
			t.Fatalf("re-lexing diverged: %d tokens then %d (err %v)", len(toks), len(again), err)
		}
	})
}
