// Package lexer tokenizes PetaBricks source text.
package lexer

import (
	"fmt"
	"strings"
	"unicode"

	"petabricks/internal/pbc/token"
)

// Lexer scans PetaBricks source into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer { return &Lexer{src: src, line: 1, col: 1} }

// Error is a lexical error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lex scans the entire input, returning the token stream terminated by
// an EOF token.
func Lex(src string) ([]token.Token, error) {
	l := New(src)
	var out []token.Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == token.EOF {
			return out, nil
		}
	}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) here() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.here()
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &Error{Pos: start, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (token.Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token.Token{}, err
	}
	pos := l.here()
	if l.pos >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.pos]
		if k, ok := token.Keywords[word]; ok {
			return token.Token{Kind: k, Lexeme: word, Pos: pos}, nil
		}
		return token.Token{Kind: token.IDENT, Lexeme: word, Pos: pos}, nil
	case unicode.IsDigit(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && (unicode.IsDigit(rune(l.peek())) || l.peek() == '.' || l.peek() == 'e' || l.peek() == 'E') {
			// Stop before ".." (range operator), and before exponent-less dots
			// followed by an identifier (member access like 2.cell is illegal
			// anyway, but ranges like 0..n must split).
			if l.peek() == '.' && l.peek2() == '.' {
				break
			}
			if (l.peek() == 'e' || l.peek() == 'E') && !unicode.IsDigit(rune(l.peek2())) && l.peek2() != '-' && l.peek2() != '+' {
				break
			}
			l.advance()
		}
		return token.Token{Kind: token.NUMBER, Lexeme: l.src[start:l.pos], Pos: pos}, nil
	case c == '%' && l.peek2() == '{':
		l.advance()
		l.advance()
		if i := strings.Index(l.src[l.pos:], "}%"); i >= 0 {
			raw := l.src[l.pos : l.pos+i]
			for j := 0; j < i+2; j++ {
				l.advance()
			}
			return token.Token{Kind: token.RAWCPP, Lexeme: raw, Pos: pos}, nil
		}
		return token.Token{}, &Error{Pos: pos, Msg: "unterminated %{ escape"}
	}
	l.advance()
	two := func(next byte, k2 token.Kind, k1 token.Kind) (token.Token, error) {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: k2, Lexeme: string(c) + string(next), Pos: pos}, nil
		}
		return token.Token{Kind: k1, Lexeme: string(c), Pos: pos}, nil
	}
	switch c {
	case '(':
		return token.Token{Kind: token.LParen, Lexeme: "(", Pos: pos}, nil
	case ')':
		return token.Token{Kind: token.RParen, Lexeme: ")", Pos: pos}, nil
	case '{':
		return token.Token{Kind: token.LBrace, Lexeme: "{", Pos: pos}, nil
	case '}':
		return token.Token{Kind: token.RBrace, Lexeme: "}", Pos: pos}, nil
	case '[':
		return token.Token{Kind: token.LBracket, Lexeme: "[", Pos: pos}, nil
	case ']':
		return token.Token{Kind: token.RBracket, Lexeme: "]", Pos: pos}, nil
	case ',':
		return token.Token{Kind: token.Comma, Lexeme: ",", Pos: pos}, nil
	case ';':
		return token.Token{Kind: token.Semi, Lexeme: ";", Pos: pos}, nil
	case '.':
		return two('.', token.DotDot, token.Dot)
	case '?':
		return token.Token{Kind: token.Question, Lexeme: "?", Pos: pos}, nil
	case ':':
		return token.Token{Kind: token.Colon, Lexeme: ":", Pos: pos}, nil
	case '+':
		if l.peek() == '+' {
			l.advance()
			return token.Token{Kind: token.PlusPlus, Lexeme: "++", Pos: pos}, nil
		}
		return two('=', token.PlusAssign, token.Plus)
	case '-':
		if l.peek() == '-' {
			l.advance()
			return token.Token{Kind: token.MinusMinus, Lexeme: "--", Pos: pos}, nil
		}
		return two('=', token.MinusAssign, token.Minus)
	case '*':
		return token.Token{Kind: token.Star, Lexeme: "*", Pos: pos}, nil
	case '/':
		return token.Token{Kind: token.Slash, Lexeme: "/", Pos: pos}, nil
	case '%':
		return token.Token{Kind: token.Percent, Lexeme: "%", Pos: pos}, nil
	case '=':
		return two('=', token.Eq, token.Assign)
	case '!':
		return two('=', token.Neq, token.Not)
	case '<':
		return two('=', token.Leq, token.LAngle)
	case '>':
		return two('=', token.Geq, token.RAngle)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return token.Token{Kind: token.AndAnd, Lexeme: "&&", Pos: pos}, nil
		}
	case '|':
		if l.peek() == '|' {
			l.advance()
			return token.Token{Kind: token.OrOr, Lexeme: "||", Pos: pos}, nil
		}
	}
	return token.Token{}, &Error{Pos: pos, Msg: fmt.Sprintf("unexpected character %q", c)}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || unicode.IsDigit(rune(c))
}
