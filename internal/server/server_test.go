package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"petabricks/internal/autotuner"
	"petabricks/internal/bench"
	"petabricks/internal/choice"
	"petabricks/internal/configstore"
	"petabricks/internal/kernels/sortk"
	"petabricks/internal/runtime"
)

const rollingSumSrc = "../../testdata/rollingsum.pbcc"

func newTestServer(t *testing.T, storePath string, tweak func(*Options)) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	if err := reg.AddKernels(); err != nil {
		t.Fatal(err)
	}
	if err := reg.LoadDSLFile(rollingSumSrc); err != nil {
		t.Fatal(err)
	}
	store, err := configstore.Open(storePath, 32)
	if err != nil {
		t.Fatal(err)
	}
	pool := runtime.NewPool(4)
	opts := Options{
		Pool:     pool,
		Store:    store,
		Registry: reg,
		TuneMax:  512,
		Logf:     t.Logf,
	}
	if tweak != nil {
		tweak(&opts)
	}
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		pool.Shutdown()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: bad response body: %v", url, err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: bad response body: %v", url, err)
	}
	return resp.StatusCode, out
}

// expectedSortChecksum reproduces the sort benchmark's fingerprint
// independently of any configuration.
func expectedSortChecksum(n int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	in := sortk.Generate(rng, n)
	sort.Slice(in.Data, func(i, j int) bool { return in.Data[i] < in.Data[j] })
	sum := 0.0
	for i, v := range in.Data {
		sum += float64(v) * float64(i+1)
	}
	return sum
}

// TestConcurrentRuns is the acceptance-criteria integration test: 24
// concurrent /v1/run requests across one native kernel (sort) and one
// interpreted .pbcc transform (RollingSum), outputs verified against an
// independent computation / for cross-request agreement. Run under
// -race this also exercises the admission layer, the shared pool, and
// the config store concurrently.
func TestConcurrentRuns(t *testing.T) {
	_, ts := newTestServer(t, "", nil)
	const (
		perProgram = 12
		sortN      = 2000
		rollN      = 48
		seed       = int64(7)
	)
	wantSort := expectedSortChecksum(sortN, seed)
	type reply struct {
		program string
		status  int
		body    map[string]any
	}
	out := make(chan reply, 2*perProgram)
	var wg sync.WaitGroup
	for i := 0; i < perProgram; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			st, body := postJSON(t, ts.URL+"/v1/run", map[string]any{"program": "sort", "n": sortN, "seed": seed})
			out <- reply{"sort", st, body}
		}()
		go func() {
			defer wg.Done()
			st, body := postJSON(t, ts.URL+"/v1/run", map[string]any{"program": "RollingSum", "n": rollN, "seed": seed})
			out <- reply{"RollingSum", st, body}
		}()
	}
	wg.Wait()
	close(out)
	rollChecksums := map[float64]int{}
	counts := map[string]int{}
	for r := range out {
		if r.status != http.StatusOK {
			t.Fatalf("%s run failed (%d): %v", r.program, r.status, r.body)
		}
		counts[r.program]++
		cs, _ := r.body["checksum"].(float64)
		switch r.program {
		case "sort":
			if cs != wantSort {
				t.Fatalf("sort checksum %v, want %v (output incorrect)", cs, wantSort)
			}
		case "RollingSum":
			rollChecksums[cs]++
		}
		if src := r.body["config_source"]; src != "baseline" {
			t.Fatalf("untuned server must serve the baseline config, got %v", src)
		}
	}
	if counts["sort"] != perProgram || counts["RollingSum"] != perProgram {
		t.Fatalf("reply counts: %v", counts)
	}
	if len(rollChecksums) != 1 {
		t.Fatalf("RollingSum outputs disagree across identical requests: %v", rollChecksums)
	}
	for cs := range rollChecksums {
		if cs == 0 {
			t.Fatal("RollingSum checksum is zero; transform produced no output")
		}
	}
}

// TestTunePersistPickup tunes sort and RollingSum through /v1/tune,
// verifies the tuned configs are served to subsequent /v1/run calls,
// and that they survive a store save/load round trip into a second
// server instance.
func TestTunePersistPickup(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "store.json")
	srv, ts := newTestServer(t, storePath, nil)
	workers := srv.pool.NumWorkers()

	for _, tc := range []struct {
		program string
		n       int64
	}{
		{"sort", 512},
		{"RollingSum", 32},
	} {
		st, body := postJSON(t, ts.URL+"/v1/tune", map[string]any{
			"program": tc.program, "n": tc.n, "max": tc.n, "wait": true,
		})
		if st != http.StatusOK {
			t.Fatalf("tune %s failed (%d): %v", tc.program, st, body)
		}
		if body["promoted"] != true {
			t.Fatalf("first tune of %s must promote: %v", tc.program, body)
		}
		wantKey := configstore.KeyFor(tc.program, tc.n, workers).String()
		if body["config"] != wantKey {
			t.Fatalf("tune key = %v, want %s", body["config"], wantKey)
		}

		// Subsequent runs at a nearby size pick the tuned config up.
		st, body = postJSON(t, ts.URL+"/v1/run", map[string]any{"program": tc.program, "n": int(tc.n) - 5})
		if st != http.StatusOK {
			t.Fatalf("run after tune failed (%d): %v", st, body)
		}
		if body["config_source"] != "store" || body["config"] != wantKey {
			t.Fatalf("run after tune served %v/%v, want store/%s", body["config_source"], body["config"], wantKey)
		}
	}

	// /v1/configs reports both entries.
	st, body := getJSON(t, ts.URL+"/v1/configs")
	if st != http.StatusOK {
		t.Fatalf("configs failed: %v", body)
	}
	if entries := body["entries"].([]any); len(entries) != 2 {
		t.Fatalf("expected 2 stored configs, got %d", len(entries))
	}

	// The store file on disk round-trips into a brand-new server.
	back, err := configstore.Open(storePath, 32)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("store file holds %d entries, want 2", back.Len())
	}
	_, ts2 := newTestServer(t, storePath, nil)
	st, body = postJSON(t, ts2.URL+"/v1/run", map[string]any{"program": "sort", "n": 500})
	if st != http.StatusOK || body["config_source"] != "store" {
		t.Fatalf("restarted server did not pick the persisted config up: %d %v", st, body)
	}
}

// TestTunedSortConfigShape pins down that tuning actually changes
// serving behaviour: after tuning, the stored selector must not be the
// O(n^2) pure insertion sort at the training size.
func TestTunedSortConfigShape(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "store.json")
	srv, ts := newTestServer(t, storePath, nil)
	st, body := postJSON(t, ts.URL+"/v1/tune", map[string]any{"program": "sort", "n": 1024, "max": 1024, "wait": true})
	if st != http.StatusOK {
		t.Fatalf("tune failed: %v", body)
	}
	cfg, _, ok := srv.store.Get(configstore.KeyFor("sort", 1024, srv.pool.NumWorkers()))
	if !ok {
		t.Fatal("tuned entry missing from store")
	}
	if cfg.Selector("sort", 0).Choose(1024).Choice == sortk.ChoiceIS {
		t.Fatalf("tuned selector still pure insertion sort at n=1024: %v", cfg.Sels["sort"])
	}
}

// TestAdmissionSheds verifies the admission layer: with one execution
// slot and a zero-length queue, concurrent requests to a slow program
// are shed with 503 instead of piling onto the pool.
func TestAdmissionSheds(t *testing.T) {
	reg := NewRegistry()
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	if err := reg.Add(&bench.Benchmark{
		Name: "slow",
		Run: func(_ *runtime.Pool, _ *choice.Config, n int, _ int64, _ bench.RunOpts) (bench.Result, error) {
			once.Do(func() { close(started) })
			<-release
			return bench.Result{Seconds: 0, Checksum: 1}, nil
		},
		Baseline: choice.NewConfig,
	}); err != nil {
		t.Fatal(err)
	}
	store, _ := configstore.Open("", 8)
	pool := runtime.NewPool(1)
	srv, err := New(Options{
		Pool: pool, Store: store, Registry: reg,
		MaxInflight: 1, MaxQueue: 1, QueueTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); pool.Shutdown() })

	codes := make(chan int, 3)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		st, _ := postJSON(t, ts.URL+"/v1/run", map[string]any{"program": "slow", "n": 1})
		codes <- st
	}()
	<-started // first request holds the only slot
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			st, _ := postJSON(t, ts.URL+"/v1/run", map[string]any{"program": "slow", "n": 1})
			codes <- st
		}()
	}
	// Both extra requests either exceed the queue bound immediately or
	// time out waiting; at least one 503 must be shed while the slot is
	// held. Then release the slot so queued work finishes.
	time.Sleep(200 * time.Millisecond)
	close(release)
	wg.Wait()
	close(codes)
	var got []int
	okCount, shedCount := 0, 0
	for c := range codes {
		got = append(got, c)
		switch c {
		case http.StatusOK:
			okCount++
		case http.StatusServiceUnavailable:
			shedCount++
		}
	}
	if okCount < 1 || shedCount < 1 || okCount+shedCount != 3 {
		t.Fatalf("admission codes = %v, want >=1 OK and >=1 503", got)
	}
}

// TestIdleRetune verifies the background tuner re-tunes a hot key
// during idle periods without any /v1/tune call.
func TestIdleRetune(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "store.json")
	srv, ts := newTestServer(t, storePath, func(o *Options) {
		o.RetuneInterval = 25 * time.Millisecond
		o.RetuneMinAge = time.Hour // each key re-tunes at most once here
		o.TuneMax = 256
	})
	// Make sort/b8 hot.
	for i := 0; i < 3; i++ {
		st, body := postJSON(t, ts.URL+"/v1/run", map[string]any{"program": "sort", "n": 256})
		if st != http.StatusOK {
			t.Fatalf("run failed: %v", body)
		}
	}
	key := configstore.KeyFor("sort", 256, srv.pool.NumWorkers())
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, ok := srv.store.Get(key); ok {
			// And the tuned entry is now served.
			st, body := postJSON(t, ts.URL+"/v1/run", map[string]any{"program": "sort", "n": 256})
			if st != http.StatusOK || body["config_source"] != "store" {
				t.Fatalf("hot key tuned but not served: %d %v", st, body)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("idle re-tuner never promoted the hot key")
}

// TestErrorsAndStats covers the 4xx surfaces and the stats/programs
// endpoints.
func TestErrorsAndStats(t *testing.T) {
	_, ts := newTestServer(t, "", nil)
	if st, _ := postJSON(t, ts.URL+"/v1/run", map[string]any{"program": "nope", "n": 10}); st != http.StatusNotFound {
		t.Fatalf("unknown program: got %d", st)
	}
	if st, _ := postJSON(t, ts.URL+"/v1/run", map[string]any{"program": "sort"}); st != http.StatusBadRequest {
		t.Fatalf("missing n: got %d", st)
	}
	if st, _ := postJSON(t, ts.URL+"/v1/run", map[string]any{"program": "sort", "n": 1 << 30}); st != http.StatusBadRequest {
		t.Fatalf("oversized n: got %d", st)
	}
	// poisson has no baseline and no stored config -> 409.
	if st, _ := postJSON(t, ts.URL+"/v1/run", map[string]any{"program": "poisson", "n": 65}); st != http.StatusConflict {
		t.Fatalf("untuned poisson: got %d", st)
	}
	// poisson is not tunable through the generic endpoint -> 400.
	if st, _ := postJSON(t, ts.URL+"/v1/tune", map[string]any{"program": "poisson"}); st != http.StatusBadRequest {
		t.Fatalf("poisson tune: got %d", st)
	}
	if st, _ := getJSON(t, ts.URL+"/healthz"); st != http.StatusOK {
		t.Fatal("healthz failed")
	}
	st, body := getJSON(t, ts.URL+"/v1/programs")
	if st != http.StatusOK {
		t.Fatal("programs failed")
	}
	progs := body["programs"].([]any)
	names := map[string]bool{}
	for _, p := range progs {
		names[p.(map[string]any)["name"].(string)] = true
	}
	for _, want := range []string{"sort", "matmul", "eigen", "poisson", "RollingSum"} {
		if !names[want] {
			t.Fatalf("program %q missing from /v1/programs: %v", want, names)
		}
	}
	// One successful run, then stats must reflect it.
	if st, body := postJSON(t, ts.URL+"/v1/run", map[string]any{"program": "sort", "n": 100}); st != http.StatusOK {
		t.Fatalf("run failed: %v", body)
	}
	st, body = getJSON(t, ts.URL+"/v1/stats")
	if st != http.StatusOK {
		t.Fatal("stats failed")
	}
	reqs := body["requests"].(map[string]any)
	if reqs["completed"].(float64) < 1 {
		t.Fatalf("stats did not count the run: %v", reqs)
	}
	if _, ok := body["pool"].(map[string]any)["workers"]; !ok {
		t.Fatalf("stats missing pool section: %v", body)
	}
}

// TestEngineSelection pins the execution tier per request and checks
// the three tiers agree on an interpreted program; /v1/stats must
// surface the tier-compilation statistics.
func TestEngineSelection(t *testing.T) {
	_, ts := newTestServer(t, "", nil)
	if st, _ := postJSON(t, ts.URL+"/v1/run", map[string]any{"program": "RollingSum", "n": 64, "engine": "turbo"}); st != http.StatusBadRequest {
		t.Fatalf("bad engine: got %d, want 400", st)
	}
	var sums []float64
	for _, eng := range []string{"interp", "closure", "jit"} {
		st, body := postJSON(t, ts.URL+"/v1/run", map[string]any{"program": "RollingSum", "n": 64, "engine": eng})
		if st != http.StatusOK {
			t.Fatalf("engine %s: got %d: %v", eng, st, body)
		}
		sums = append(sums, body["checksum"].(float64))
	}
	if sums[0] != sums[1] || sums[1] != sums[2] {
		t.Fatalf("tiers disagree: checksums %v", sums)
	}
	st, body := getJSON(t, ts.URL+"/v1/stats")
	if st != http.StatusOK {
		t.Fatal("stats failed")
	}
	engines, ok := body["engines"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing engines section: %v", body)
	}
	compiled, ok := engines["compiled"].(map[string]any)
	if !ok || len(compiled) == 0 {
		t.Fatalf("engines stats recorded no tier compiles: %v", engines)
	}
	// Both RollingSum rules — including the direct sum-over-region rule
	// — are inside the bytecode fragment since reductions lower, so the
	// jit must record no fallback for this transform.
	if fallbacks, ok := engines["fallbacks"].([]any); ok {
		for _, f := range fallbacks {
			r := f.(map[string]any)
			if r["tier"] == "jit" && r["transform"] == "RollingSum" {
				t.Fatalf("unexpected jit fallback for RollingSum: %v", r)
			}
		}
	}
}

// TestTuneNeverPromotesBrokenConfig sanity-checks the tuner's evaluator
// path: the WallClock evaluator must give a working baseline config a
// finite cost (broken configs score 1e30 and can never rank above it).

func TestTuneNeverPromotesBrokenConfig(t *testing.T) {
	b, _ := bench.Lookup("sort")
	pool := runtime.NewPool(1)
	defer pool.Shutdown()
	prog := b.Program(pool)
	w := &autotuner.WallClock{P: prog, Trials: 1, Seed: 3}
	cfg := b.Baseline()
	if c := w.Measure(cfg, 256); c >= 1e30 {
		t.Fatalf("baseline sort config disqualified: %g", c)
	}
}
