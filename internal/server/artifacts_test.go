package server

import (
	"io"
	"net/http"
	"testing"

	"petabricks/internal/artifact"
)

const heat1dSrc = "../../testdata/heat1d.pbcc"

// artifactServer builds a test server whose registry also serves Heat1D
// (fully jit-lowerable, so it exercises the persistent tier) backed by
// an artifact store on dir.
func artifactServer(t *testing.T, dir string) (*Server, *httptest2) {
	t.Helper()
	arts, err := artifact.Open(dir, artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, "", func(o *Options) {
		if err := o.Registry.LoadDSLFile(heat1dSrc); err != nil {
			t.Fatal(err)
		}
		o.Artifacts = arts
	})
	return srv, &httptest2{ts.URL}
}

// httptest2 wraps the test server URL so helpers read naturally.
type httptest2 struct{ URL string }

func runHeat1D(t *testing.T, baseURL string) {
	t.Helper()
	status, body := postJSON(t, baseURL+"/v1/run", map[string]any{
		"program": "Heat1D", "n": 32, "seed": 5,
	})
	if status != http.StatusOK {
		t.Fatalf("/v1/run Heat1D: status %d body %v", status, body)
	}
}

func artifactStats(t *testing.T, baseURL string) map[string]any {
	t.Helper()
	status, body := getJSON(t, baseURL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("/v1/stats: status %d", status)
	}
	sec, ok := body["artifacts"].(map[string]any)
	if !ok {
		t.Fatalf("/v1/stats has no artifacts section: %v", body)
	}
	return sec
}

// TestServerPersistsAndServesArtifacts drives the full service story:
// a run populates the disk tier, /v1/stats reports it, /v1/artifacts
// exposes it, and a second server over the same directory serves the
// same request from the persisted bytecode with zero disk misses.
func TestServerPersistsAndServesArtifacts(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := artifactServer(t, dir)
	runHeat1D(t, ts1.URL)

	stats := artifactStats(t, ts1.URL)
	if stats["persistent"] != true {
		t.Fatalf("artifacts section not persistent: %v", stats)
	}
	disk := stats["disk"].(map[string]any)
	if disk["saves"].(float64) < 1 {
		t.Fatalf("no artifact saved after a Heat1D run: %v", disk)
	}

	// The listing endpoint: digest probe carries no entries, the full
	// form lists what the run persisted.
	status, probe := getJSON(t, ts1.URL+"/v1/artifacts?digest=1")
	if status != http.StatusOK || probe["digest"] == "" || probe["entries"] != nil {
		t.Fatalf("digest probe: status %d body %v", status, probe)
	}
	status, full := getJSON(t, ts1.URL+"/v1/artifacts")
	if status != http.StatusOK {
		t.Fatalf("/v1/artifacts: status %d", status)
	}
	entries, ok := full["entries"].([]any)
	if !ok || len(entries) == 0 {
		t.Fatalf("/v1/artifacts lists no entries: %v", full)
	}
	if int(full["schema"].(float64)) != artifact.SchemaVersion {
		t.Errorf("schema = %v, want %d", full["schema"], artifact.SchemaVersion)
	}

	// The raw fetch must round-trip through InstallRaw on another store
	// — this is exactly what a replication peer does.
	id := entries[0].(map[string]any)["id"].(string)
	resp, err := http.Get(ts1.URL + "/v1/artifacts?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("raw fetch: status %d err %v", resp.StatusCode, err)
	}
	other, err := artifact.Open(t.TempDir(), artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info, err := other.InstallRaw(raw); err != nil || info.ID != id {
		t.Fatalf("InstallRaw of fetched artifact: info %+v err %v", info, err)
	}

	// The restart: a second server over the same directory must serve
	// the identical request warm — disk hits, no disk misses.
	_, ts2 := artifactServer(t, dir)
	runHeat1D(t, ts2.URL)
	disk2 := artifactStats(t, ts2.URL)["disk"].(map[string]any)
	if disk2["hits"].(float64) < 1 {
		t.Errorf("restarted server recorded no disk hits: %v", disk2)
	}
	if disk2["misses"].(float64) != 0 {
		t.Errorf("restarted server recorded %v disk misses", disk2["misses"])
	}
}

// TestServerArtifactsDisabled pins the no-store behavior: the stats
// section reports disabled and the endpoint 404s rather than serving an
// empty store that peers would endlessly probe.
func TestServerArtifactsDisabled(t *testing.T) {
	_, ts := newTestServer(t, "", nil)
	stats := artifactStats(t, ts.URL)
	if stats["enabled"] != false {
		t.Errorf("artifacts section = %v, want enabled false", stats)
	}
	status, _ := getJSON(t, ts.URL+"/v1/artifacts")
	if status != http.StatusNotFound {
		t.Errorf("/v1/artifacts without a store: status %d, want 404", status)
	}
}

// TestServerArtifactsUnknownID pins the raw-fetch miss path.
func TestServerArtifactsUnknownID(t *testing.T) {
	_, ts := artifactServer(t, t.TempDir())
	status, _ := getJSON(t, ts.URL+"/v1/artifacts?id=v2-doesnotexist")
	if status != http.StatusNotFound {
		t.Errorf("unknown artifact fetch: status %d, want 404", status)
	}
}
