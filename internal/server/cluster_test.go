package server

import (
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"petabricks/internal/choice"
	"petabricks/internal/cluster"
	"petabricks/internal/configstore"
	"petabricks/internal/runtime"
)

// newClusterNodes starts n pbserve nodes on loopback listeners that all
// know each other as peers. Listeners are bound before any Server is
// constructed so every node's membership list holds real addresses.
func newClusterNodes(t *testing.T, n int, tweak func(i int, o *Options)) (addrs []string, stores []*configstore.Store) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs = make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = "http://" + ln.Addr().String()
	}
	stores = make([]*configstore.Store, n)
	for i := range lns {
		reg := NewRegistry()
		if err := reg.AddKernels(); err != nil {
			t.Fatal(err)
		}
		store, err := configstore.Open("", 32)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = store
		pool := runtime.NewPool(2)
		cl, err := cluster.New(cluster.Options{
			Self:           addrs[i],
			Peers:          addrs,
			ForwardTimeout: 2 * time.Second,
			SuspectFor:     300 * time.Millisecond,
			Logf:           t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{
			Pool:              pool,
			Store:             store,
			Registry:          reg,
			TuneMax:           512,
			Logf:              t.Logf,
			Cluster:           cl,
			ReplicateInterval: -1, // tests drive replication explicitly
		}
		if tweak != nil {
			tweak(i, &opts)
		}
		srv, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(lns[i])
		t.Cleanup(func() {
			hs.Close()
			srv.Close()
			pool.Shutdown()
		})
	}
	return addrs, stores
}

// ownerIndex rebuilds the nodes' ring (same peers, same vnode count)
// and returns which node owns the shard for (program, n).
func ownerIndex(t *testing.T, addrs []string, program string, n int) int {
	t.Helper()
	ring := cluster.NewRing(addrs, cluster.DefaultVNodes)
	owner := ring.Owner(cluster.ShardKey(program, configstore.Bucket(int64(n))))
	for i, a := range addrs {
		if a == owner {
			return i
		}
	}
	t.Fatalf("owner %q not in membership %v", owner, addrs)
	return -1
}

// TestClusterForwarding: a run sent to a non-owner lands on the owner
// (served_by says so), the answer is still correct, and the forwarded
// request does not bounce again (single-hop guard).
func TestClusterForwarding(t *testing.T) {
	addrs, _ := newClusterNodes(t, 3, nil)

	// Find an input size owned by a node other than addrs[0] so sending
	// it to node 0 must forward.
	const program = "sort"
	n, owner := 0, 0
	for size := 64; size <= 4096; size *= 2 {
		if idx := ownerIndex(t, addrs, program, size); idx != 0 {
			n, owner = size, idx
			break
		}
	}
	if n == 0 {
		t.Skip("every probed size hashed to node 0; ring layout makes this vanishingly rare")
	}

	status, body := postJSON(t, addrs[0]+"/v1/run", map[string]any{
		"program": program, "n": n, "seed": 7,
	})
	if status != http.StatusOK {
		t.Fatalf("forwarded run failed: %d %v", status, body)
	}
	if got := body["served_by"]; got != addrs[owner] {
		t.Fatalf("served_by = %v, want owner %s", got, addrs[owner])
	}
	if sum, want := body["checksum"].(float64), expectedSortChecksum(n, 7); sum != want {
		t.Fatalf("forwarded run checksum %g, want %g", sum, want)
	}

	// Node 0's stats must show the forward; the owner's must not (the
	// guard header forces local execution on the receiving side).
	_, stats := getJSON(t, addrs[0]+"/v1/stats")
	cl := stats["cluster"].(map[string]any)
	if cl["forwarded"].(float64) < 1 {
		t.Fatalf("node 0 forwarded = %v, want >= 1", cl["forwarded"])
	}
	_, ownerStats := getJSON(t, addrs[owner]+"/v1/stats")
	if f := ownerStats["cluster"].(map[string]any)["forwarded"].(float64); f != 0 {
		t.Fatalf("owner re-forwarded %v requests; guard header broken", f)
	}
}

// TestClusterFallbackWhenPeerDown: with the owning peer unreachable the
// non-owner serves the request locally instead of failing it.
func TestClusterFallbackWhenPeerDown(t *testing.T) {
	// One live node plus one dead membership entry.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	live := "http://" + ln.Addr().String()
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + deadLn.Addr().String()
	deadLn.Close() // nothing will ever answer there

	reg := NewRegistry()
	if err := reg.AddKernels(); err != nil {
		t.Fatal(err)
	}
	store, _ := configstore.Open("", 32)
	pool := runtime.NewPool(2)
	cl, err := cluster.New(cluster.Options{
		Self:           live,
		Peers:          []string{live, dead},
		ForwardTimeout: 300 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{
		Pool: pool, Store: store, Registry: reg, TuneMax: 512,
		Logf: t.Logf, Cluster: cl, ReplicateInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close(); srv.Close(); pool.Shutdown() })

	// Find a size the dead node owns.
	ring := cluster.NewRing([]string{live, dead}, cluster.DefaultVNodes)
	n := 0
	for size := 64; size <= 1<<15; size *= 2 {
		if ring.Owner(cluster.ShardKey("sort", configstore.Bucket(int64(size)))) == dead {
			n = size
			break
		}
	}
	if n == 0 {
		t.Skip("no probed size owned by the dead node")
	}

	status, body := postJSON(t, live+"/v1/run", map[string]any{
		"program": "sort", "n": n, "seed": 3,
	})
	if status != http.StatusOK {
		t.Fatalf("fallback run failed: %d %v", status, body)
	}
	if sum, want := body["checksum"].(float64), expectedSortChecksum(n, 3); sum != want {
		t.Fatalf("fallback checksum %g, want %g", sum, want)
	}
	if got := body["served_by"]; got != live {
		t.Fatalf("served_by = %v, want local node %s", got, live)
	}
	_, stats := getJSON(t, live+"/v1/stats")
	cl2 := stats["cluster"].(map[string]any)
	if cl2["fallbacks"].(float64) < 1 {
		t.Fatalf("fallbacks = %v, want >= 1", cl2["fallbacks"])
	}
}

// TestJobsLifecycle: submit an async run, poll to completion, and check
// the result matches a synchronous run's answer.
func TestJobsLifecycle(t *testing.T) {
	_, ts := newTestServer(t, "", nil)

	status, body := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"program": "sort", "n": 512, "seed": 11,
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %v", status, body)
	}
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("submit returned no id: %v", body)
	}

	deadline := time.Now().Add(30 * time.Second)
	var job map[string]any
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %v", id, job)
		}
		_, job = getJSON(t, ts.URL+"/v1/jobs/"+id)
		state, _ := job["state"].(string)
		if state == "done" || state == "failed" {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if job["state"] != "done" {
		t.Fatalf("job failed: %v", job)
	}
	result, ok := job["result"].(map[string]any)
	if !ok {
		t.Fatalf("done job has no result: %v", job)
	}
	if sum, want := result["checksum"].(float64), expectedSortChecksum(512, 11); sum != want {
		t.Fatalf("job checksum %g, want %g", sum, want)
	}

	// Unknown id: 404. Bad request: 400 and no job created.
	resp, err := http.Get(ts.URL + "/v1/jobs/job-does-not-exist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job id: %d, want 404", resp.StatusCode)
	}
	status, _ = postJSON(t, ts.URL+"/v1/jobs", map[string]any{"program": "nope", "n": 8})
	if status != http.StatusNotFound {
		t.Fatalf("unknown program submit: %d, want 404 (same as /v1/run)", status)
	}
	status, _ = postJSON(t, ts.URL+"/v1/jobs", map[string]any{"program": "sort", "n": -1})
	if status != http.StatusBadRequest {
		t.Fatalf("negative-n submit: %d, want 400", status)
	}
}

// TestClusterReplication: a config tuned on node A reaches node B's
// store through the pull replicator and B then serves lookups from it.
func TestClusterReplication(t *testing.T) {
	addrs, stores := newClusterNodes(t, 2, func(i int, o *Options) {
		o.ReplicateInterval = 50 * time.Millisecond
	})

	// Install a tuned config on node 0 only.
	k := configstore.KeyFor("sort", 512, 2)
	cfg := choice.NewConfig()
	cfg.SetInt("sort.seqcutoff", 128)
	stores[0].Put(k, cfg, 0.001, time.Now())

	deadline := time.Now().Add(10 * time.Second)
	for stores[1].Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("node 1 never replicated node 0's config")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if _, gotKey, ok := stores[1].Lookup("sort", 512, 2); !ok || gotKey != k {
		t.Fatalf("replicated lookup: key=%v ok=%v, want %v", gotKey, ok, k)
	}
	// Lookup responses expose the replicated entry too.
	_, body := getJSON(t, fmt.Sprintf("%s/v1/configs?program=sort&n=512&workers=2", addrs[1]))
	lookup, ok := body["lookup"].(map[string]any)
	if !ok || lookup["found"] != true {
		t.Fatalf("configs lookup on replica: %v", body)
	}
	if lookup["matched_bucket"].(float64) != float64(k.Bucket) {
		t.Fatalf("matched_bucket = %v, want %d", lookup["matched_bucket"], k.Bucket)
	}
}
