package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"petabricks/internal/autotuner"
	"petabricks/internal/bench"
	"petabricks/internal/choice"
	"petabricks/internal/obs"
	"petabricks/internal/pbc/interp"
	"petabricks/internal/runtime"
)

// TestMetricsEndpoint is the acceptance check for the observability
// layer: after live traffic, GET /metrics must expose pool steal/park
// counters, interp compile-cache counters, and request latency
// histograms in Prometheus text format, and the opt-in pprof endpoints
// must answer.
func TestMetricsEndpoint(t *testing.T) {
	mreg := obs.NewRegistry()
	interp.Instrument(mreg)
	defer interp.Instrument(nil)
	autotuner.Instrument(mreg)
	defer autotuner.Instrument(nil)

	_, ts := newTestServer(t, "", func(o *Options) {
		o.Metrics = mreg
		o.EnablePprof = true
	})

	// Live traffic: one native kernel run and two interpreted DSL runs
	// (the second hits the compiled-program cache).
	for _, body := range []map[string]any{
		{"program": "sort", "n": 2000, "seed": 3},
		{"program": "RollingSum", "n": 48, "seed": 3},
		{"program": "RollingSum", "n": 48, "seed": 4},
	} {
		if code, out := postJSON(t, ts.URL+"/v1/run", body); code != http.StatusOK {
			t.Fatalf("run %v: code %d body %v", body, code, out)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition format", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		// Pool scheduler state, per worker.
		`pb_pool_worker_steals_total{worker="0"}`,
		`pb_pool_worker_parks_total{worker="0"}`,
		`pb_pool_worker_queue_depth{worker="0"}`,
		"# TYPE pb_pool_task_seconds histogram",
		// Interp compile cache (two RollingSum runs: miss then hit).
		"# TYPE pb_interp_cache_hits_total counter",
		"# TYPE pb_interp_cache_misses_total counter",
		// Request latency histogram with endpoint label and buckets.
		`pb_server_request_seconds_bucket{endpoint="run",le="+Inf"} 3`,
		`pb_server_requests_total{result="completed"} 3`,
		`pb_interp_run_seconds_count{transform="RollingSum"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(body, "pb_interp_cache_hits_total 1") {
		t.Errorf("cache hit counter not live after repeated run:\n%s",
			grepLines(body, "pb_interp_cache"))
	}

	// Basic exposition-format validity: every non-comment line is
	// "name{labels} value" with a parseable value.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i < 0 || i == len(line)-1 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// pprof answers when opted in.
	pp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/cmdline = %d, want 200", pp.StatusCode)
	}
}

// TestMetricsDisabled: without Options.Metrics, /metrics is not routed
// and pprof stays unmounted.
func TestMetricsDisabled(t *testing.T) {
	_, ts := newTestServer(t, "", nil)
	for _, path := range []string{"/metrics", "/debug/pprof/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404 when observability is off", path, resp.StatusCode)
		}
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// jsonResp carries a decoded JSON body together with the response
// headers, which the plain postJSON helper discards.
type jsonResp struct {
	header http.Header
	json   map[string]any
}

func postJSONResp(t *testing.T, url string, body any) (int, jsonResp) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: bad response body: %v", url, err)
	}
	return resp.StatusCode, jsonResp{header: resp.Header, json: out}
}

// blockingProgram signals on started, then parks every Run until the
// gate opens; it lets tests hold the background tuner busy
// deterministically.
type blockingProgram struct {
	started chan struct{}
	once    sync.Once
	gate    chan struct{}
}

func (p *blockingProgram) Run(cfg *choice.Config, size, seed int64) (any, error) {
	p.once.Do(func() { close(p.started) })
	<-p.gate
	return size, nil
}

func (p *blockingProgram) Same(a, b any, tol float64) bool { return true }

func blockingBenchmark(prog *blockingProgram) *bench.Benchmark {
	space := func() *choice.Space {
		sp := &choice.Space{}
		sp.AddSelector(choice.SelectorSpec{
			Transform:   "slowtune",
			ChoiceNames: []string{"only"},
			Recursive:   []bool{false},
			MaxLevels:   1,
		})
		return sp
	}
	return &bench.Benchmark{
		Name: "slowtune",
		Run: func(pool *runtime.Pool, cfg *choice.Config, n int, seed int64, opt bench.RunOpts) (bench.Result, error) {
			return bench.Result{}, nil
		},
		Space:    space,
		Program:  func(pool *runtime.Pool) autotuner.Program { return prog },
		Baseline: func() *choice.Config { return choice.NewConfig() },
		CheckTol: -1,
		MinSize:  64,
		Trials:   1,
	}
}

// TestShedRetryAfter is the admission-layer table test: when the server
// sheds load — run slots exhausted or the tuning queue full — the
// response must be a 503 with a Retry-After header and a structured
// JSON body, not a bare 503.
func TestShedRetryAfter(t *testing.T) {
	prog := &blockingProgram{started: make(chan struct{}), gate: make(chan struct{})}
	defer close(prog.gate)
	srv, hs := newTestServer(t, "", func(o *Options) {
		o.MaxInflight = 1
		o.QueueTimeout = 200 * time.Millisecond
		if err := o.Registry.Add(blockingBenchmark(prog)); err != nil {
			t.Fatal(err)
		}
	})
	ts := hs.URL

	cases := []struct {
		name  string
		setup func(t *testing.T)
		post  string
		body  map[string]any
	}{
		{
			name: "run slots exhausted",
			setup: func(t *testing.T) {
				srv.sem <- struct{}{} // occupy the only execution slot
				t.Cleanup(func() { <-srv.sem })
			},
			post: "/v1/run",
			body: map[string]any{"program": "sort", "n": 100, "seed": 1},
		},
		{
			name: "tune queue full",
			setup: func(t *testing.T) {
				// One job parks the tuner inside the gated program, then
				// the queue is filled to capacity behind it.
				if !srv.tuner.enqueue(tuneJob{program: "slowtune", size: 64, max: 64}) {
					t.Fatal("could not start the blocking tune job")
				}
				select {
				case <-prog.started: // the tuner goroutine is parked now
				case <-time.After(5 * time.Second):
					t.Fatal("blocking tune job never started")
				}
				deadline := time.Now().Add(2 * time.Second)
				for srv.tuner.enqueue(tuneJob{program: "slowtune", size: 64, max: 64}) {
					if time.Now().After(deadline) {
						t.Fatal("tuning queue never filled")
					}
				}
			},
			post: "/v1/tune",
			body: map[string]any{"program": "slowtune", "max": 64},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.setup(t)
			code, out := postJSONResp(t, ts+tc.post, tc.body)
			if code != http.StatusServiceUnavailable {
				t.Fatalf("code = %d, want 503 (body %v)", code, out.json)
			}
			if ra := out.header.Get("Retry-After"); ra != "1" {
				t.Errorf("Retry-After = %q, want %q (QueueTimeout rounded up)", ra, "1")
			}
			if _, ok := out.json["error"].(string); !ok {
				t.Errorf("shed body has no error string: %v", out.json)
			}
			if secs, ok := out.json["retry_after_seconds"].(float64); !ok || secs != 1 {
				t.Errorf("retry_after_seconds = %v, want 1", out.json["retry_after_seconds"])
			}
		})
	}

	// Control: a plain client error must NOT advertise Retry-After.
	code, out := postJSONResp(t, ts+"/v1/run", map[string]any{"program": "nope", "n": 1})
	if code != http.StatusNotFound {
		t.Fatalf("unknown program = %d, want 404", code)
	}
	if ra := out.header.Get("Retry-After"); ra != "" {
		t.Errorf("404 carries Retry-After %q; only shedding responses should", ra)
	}
}
