package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"petabricks/internal/bench"
	"petabricks/internal/choice"
	"petabricks/internal/configstore"
	"petabricks/internal/runtime"
)

// newNegativeServer builds a server with one execution slot, a blocking
// "slow" program (not tunable — no search space), and the native
// kernels, for exercising every rejection path.
func newNegativeServer(t *testing.T) (*Server, *httptest.Server, chan struct{}, chan struct{}) {
	t.Helper()
	reg := NewRegistry()
	if err := reg.AddKernels(); err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	if err := reg.Add(&bench.Benchmark{
		Name: "slow",
		Run: func(_ *runtime.Pool, _ *choice.Config, n int, _ int64, _ bench.RunOpts) (bench.Result, error) {
			started <- struct{}{}
			<-release
			return bench.Result{Checksum: 1}, nil
		},
		Baseline: choice.NewConfig,
	}); err != nil {
		t.Fatal(err)
	}
	store, err := configstore.Open("", 8)
	if err != nil {
		t.Fatal(err)
	}
	pool := runtime.NewPool(2)
	srv, err := New(Options{
		Pool: pool, Store: store, Registry: reg,
		MaxInflight: 1, MaxQueue: 4, QueueTimeout: 5 * time.Second,
		MaxN: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); pool.Shutdown() })
	return srv, ts, started, release
}

// TestHandlerNegativePaths is the table-driven sweep over every way a
// request can be malformed: wrong method, broken or mistyped JSON,
// oversized bodies, unknown programs, out-of-range sizes, and tuning a
// program that has no search space.
func TestHandlerNegativePaths(t *testing.T) {
	_, ts, _, release := newNegativeServer(t)
	defer close(release)

	huge := `{"program": "sort", "n": 8, "pad": "` + strings.Repeat("x", 1<<21) + `"}`
	tests := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"run rejects GET", http.MethodGet, "/v1/run", "", http.StatusMethodNotAllowed},
		{"run rejects PUT", http.MethodPut, "/v1/run", `{"program":"sort","n":8}`, http.StatusMethodNotAllowed},
		{"tune rejects GET", http.MethodGet, "/v1/tune", "", http.StatusMethodNotAllowed},
		{"configs rejects POST", http.MethodPost, "/v1/configs", "{}", http.StatusMethodNotAllowed},
		{"stats rejects POST", http.MethodPost, "/v1/stats", "{}", http.StatusMethodNotAllowed},
		{"programs rejects DELETE", http.MethodDelete, "/v1/programs", "", http.StatusMethodNotAllowed},

		{"run empty body", http.MethodPost, "/v1/run", "", http.StatusBadRequest},
		{"run truncated JSON", http.MethodPost, "/v1/run", `{"program": "sort", "n":`, http.StatusBadRequest},
		{"run not JSON", http.MethodPost, "/v1/run", "program=sort&n=8", http.StatusBadRequest},
		{"run mistyped field", http.MethodPost, "/v1/run", `{"program": 7, "n": "eight"}`, http.StatusBadRequest},
		{"run oversized body", http.MethodPost, "/v1/run", huge, http.StatusBadRequest},

		{"run unknown program", http.MethodPost, "/v1/run", `{"program": "nope", "n": 8}`, http.StatusNotFound},
		{"run missing n", http.MethodPost, "/v1/run", `{"program": "sort"}`, http.StatusBadRequest},
		{"run zero n", http.MethodPost, "/v1/run", `{"program": "sort", "n": 0}`, http.StatusBadRequest},
		{"run negative n", http.MethodPost, "/v1/run", `{"program": "sort", "n": -4}`, http.StatusBadRequest},
		{"run n over limit", http.MethodPost, "/v1/run", `{"program": "sort", "n": 8192}`, http.StatusBadRequest},

		{"tune empty body", http.MethodPost, "/v1/tune", "", http.StatusBadRequest},
		{"tune bad JSON", http.MethodPost, "/v1/tune", `{"program"`, http.StatusBadRequest},
		{"tune unknown program", http.MethodPost, "/v1/tune", `{"program": "nope"}`, http.StatusNotFound},
		{"tune untunable program", http.MethodPost, "/v1/tune", `{"program": "slow"}`, http.StatusBadRequest},
		{"tune n over limit", http.MethodPost, "/v1/tune", `{"program": "sort", "n": 8192}`, http.StatusBadRequest},
		{"tune max over limit", http.MethodPost, "/v1/tune", `{"program": "sort", "max": 9999}`, http.StatusBadRequest},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s: got %d, want %d (body %s)", tc.method, tc.path, resp.StatusCode, tc.want, body)
			}
			// Every rejection must still be well-formed JSON with an error field.
			if !strings.Contains(string(body), `"error"`) {
				t.Fatalf("%s %s: rejection body lacks error field: %s", tc.method, tc.path, body)
			}
		})
	}
}

// TestRunRejectedAfterClose checks the shutdown gate: once Close has
// run, execution endpoints shed with 503 instead of touching the pool.
func TestRunRejectedAfterClose(t *testing.T) {
	srv, ts, _, release := newNegativeServer(t)
	close(release)
	srv.Close()
	for _, path := range []string{"/v1/run", "/v1/tune"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(`{"program": "sort", "n": 8}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s after Close: got %d, want 503", path, resp.StatusCode)
		}
	}
}

// TestRunCancellationWhileQueued cancels a request that is waiting for
// the single execution slot: the server must notice the dead client,
// count the request as shed, leave the queue clean, and keep serving.
func TestRunCancellationWhileQueued(t *testing.T) {
	srv, ts, started, release := newNegativeServer(t)

	// Occupy the only slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/v1/run", "application/json",
			strings.NewReader(`{"program": "slow", "n": 1}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	// Queue a second request, then cancel it client-side mid-wait.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run",
		strings.NewReader(`{"program": "slow", "n": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.waiting.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("cancelled request reported success")
	}
	for srv.waiting.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("cancelled request still counted as waiting")
		}
		time.Sleep(time.Millisecond)
	}
	if srv.shed.Load() == 0 {
		t.Fatal("cancelled request was not counted as shed")
	}

	// Unblock the first request and confirm the server still serves.
	close(release)
	wg.Wait()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"program": "slow", "n": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	<-started
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after cancellation recovery: got %d, want 200", resp.StatusCode)
	}
}
