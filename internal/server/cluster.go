package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"petabricks/internal/bench"
	"petabricks/internal/cluster"
)

// --- request forwarding -------------------------------------------------

// forwardRun relays a run request to its owner node and copies the
// owner's verdict — success, shed, or failure — back to the client.
// It reports false when the owner could not be reached at all (down,
// suspect, timed out), in which case the caller executes locally.
func (s *Server) forwardRun(w http.ResponseWriter, r *http.Request, owner string, req runRequest) bool {
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	status, respBody, err := s.cluster.Forward(r.Context(), owner, http.MethodPost, "/v1/run", body)
	if err != nil {
		if !errors.Is(err, cluster.ErrPeerUnavailable) {
			s.opts.Logf("pbserve: forward to %s failed: %v", owner, err)
		}
		return false
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(respBody)
	return true
}

// --- async job API ------------------------------------------------------

// handleJobs serves the async job API:
//
//	POST /v1/jobs       submit a run request; returns 202 + job id
//	GET  /v1/jobs/{id}  poll state (pending/running/done/failed)
//
// Jobs exist for inputs large enough that holding an HTTP connection
// through admission control is the wrong shape: the submit returns
// immediately, the execution funnels through the same admission layer
// as /v1/run, and the result is retained in a bounded store until
// evicted. Jobs are deliberately node-local — the id names a job on
// the node that accepted it, so clients poll where they submitted;
// cluster routing applies to the execution's key lookup exactly as it
// would for a synchronous run on this node.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost:
		if strings.TrimSuffix(r.URL.Path, "/") != "/v1/jobs" {
			writeErr(w, http.StatusNotFound, "POST to /v1/jobs")
			return
		}
		s.handleJobSubmit(w, r)
	case r.Method == http.MethodGet:
		id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
		if id == "" || id == "/v1/jobs" || strings.Contains(id, "/") {
			writeErr(w, http.StatusNotFound, "GET /v1/jobs/{id}")
			return
		}
		job, ok := s.jobs.Get(id)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown job %q (finished jobs are evicted when the store fills)", id))
			return
		}
		writeJSON(w, http.StatusOK, job)
	default:
		writeErr(w, http.StatusMethodNotAllowed, "POST /v1/jobs or GET /v1/jobs/{id}")
	}
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeErr(w, http.StatusServiceUnavailable, errShutdown.Error())
		return
	}
	var req runRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	b, acc, code, msg := s.validateRun(&req)
	if code != 0 {
		writeErr(w, code, msg)
		return
	}
	job, err := s.jobs.Create(req, time.Now())
	if err != nil {
		s.shed.Add(1)
		s.writeBusy(w, "job store full; retry later")
		return
	}
	s.jobWG.Add(1)
	go func() {
		defer s.jobWG.Done()
		s.runJob(job.ID, b, req, acc)
	}()
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":    job.ID,
		"state": job.State,
		"poll":  "/v1/jobs/" + job.ID,
	})
}

// runJob drives one async job through the state machine. The config is
// resolved at execution time, not submit time, so a configuration
// promoted (or replicated in) while the job sat pending is what runs.
func (s *Server) runJob(id string, b *bench.Benchmark, req runRequest, acc int) {
	if err := s.jobs.Start(id, time.Now()); err != nil {
		return // store raced an eviction; nothing to report to
	}
	cfg, keyStr, source, bucket, errMsg := s.resolveConfig(b, req)
	if errMsg != "" {
		s.jobs.Fail(id, errMsg, time.Now())
		return
	}
	res, err := s.execute(context.Background(), b, cfg, req, acc)
	if err != nil {
		s.jobs.Fail(id, err.Error(), time.Now())
		return
	}
	s.jobs.Finish(id, runResponse{
		Program:      req.Program,
		N:            req.N,
		Workers:      s.pool.NumWorkers(),
		Seconds:      res.Seconds,
		Checksum:     res.Checksum,
		Detail:       res.Detail,
		Config:       keyStr,
		ConfigSource: source,
		Bucket:       bucket,
		ServedBy:     s.cluster.Self(),
	}, time.Now())
}
