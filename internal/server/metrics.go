package server

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"petabricks/internal/obs"
)

// instrument wires the server's observability endpoints and metrics.
// With Options.Metrics set, GET /metrics serves the registry in
// Prometheus text format and the server registers request counters,
// admission gauges, latency histograms, the shared pool's per-worker
// scheduler metrics, and config-store / background-tuner state. With
// Options.EnablePprof set, the net/http/pprof handlers are mounted
// under /debug/pprof/ (opt-in: profiling endpoints expose internals and
// cost CPU while sampling).
func (s *Server) instrument() {
	if s.opts.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	reg := s.opts.Metrics
	if reg == nil {
		return // latency histograms stay nil; observing them is a no-op
	}
	s.mux.Handle("/metrics", obs.Handler(reg))

	reg.CounterFunc("pb_server_requests_total", "Run requests by outcome.", s.requests.Load, obs.L("result", "admitted"))
	reg.CounterFunc("pb_server_requests_total", "Run requests by outcome.", s.completed.Load, obs.L("result", "completed"))
	reg.CounterFunc("pb_server_requests_total", "Run requests by outcome.", s.failures.Load, obs.L("result", "failed"))
	reg.CounterFunc("pb_server_requests_total", "Run requests by outcome.", s.shed.Load, obs.L("result", "shed"))
	reg.GaugeFunc("pb_server_inflight", "Requests currently executing.", func() float64 {
		return float64(s.inflight())
	})
	reg.GaugeFunc("pb_server_queue_waiting", "Requests queued for an execution slot.", func() float64 {
		return float64(s.waiting.Load())
	})
	reg.GaugeFunc("pb_server_uptime_seconds", "Seconds since the server started.", func() float64 {
		return time.Since(s.start).Seconds()
	})
	s.latRun = reg.Histogram("pb_server_request_seconds", "Request handling latency.",
		obs.LatencyBuckets, obs.L("endpoint", "run"))
	s.latTune = reg.Histogram("pb_server_request_seconds", "Request handling latency.",
		obs.LatencyBuckets, obs.L("endpoint", "tune"))

	s.pool.Instrument(reg)

	reg.GaugeFunc("pb_store_configs", "Tuned configurations held by the store.", func() float64 {
		return float64(s.store.Len())
	})
	t := s.tuner
	reg.CounterFunc("pb_server_tune_jobs_total", "Background tune jobs by outcome.", t.promoted.Load, obs.L("outcome", "promoted"))
	reg.CounterFunc("pb_server_tune_jobs_total", "Background tune jobs by outcome.", t.rejected.Load, obs.L("outcome", "rejected"))
	reg.CounterFunc("pb_server_tune_jobs_total", "Background tune jobs by outcome.", t.failed.Load, obs.L("outcome", "failed"))
	reg.CounterFunc("pb_server_tune_idle_runs_total", "Idle re-tune jobs started.", t.idleRuns.Load)

	// Cluster-layer metrics: coalescing, async jobs, replication. The
	// cluster's own forward/suspect counters register in cluster.New,
	// which shares this registry in cmd/pbserve.
	s.coalescer.Instrument(reg)
	s.jobs.Instrument(reg)
	s.replic.Instrument(reg)
	s.opts.Artifacts.Instrument(reg)
}

// retryAfterSeconds is the hint sent with load-shedding responses: the
// queue timeout is how long a queued request would have waited, so it
// is also a reasonable time for the client to back off.
func (s *Server) retryAfterSeconds() int {
	secs := int(s.opts.QueueTimeout / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// writeBusy is the admission layer's rejection: 503 with a Retry-After
// header and a structured JSON body, so well-behaved clients back off
// instead of hammering a saturated server.
func (s *Server) writeBusy(w http.ResponseWriter, msg string) {
	secs := s.retryAfterSeconds()
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":               msg,
		"retry_after_seconds": secs,
	})
}
