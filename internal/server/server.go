// Package server implements pbserve: a long-running PetaBricks
// execution service. It exposes the benchmark kernels and interpreted
// .pbcc transforms over HTTP (stdlib net/http only), executes every
// request under the best known tuned configuration from a persistent
// config store, caps concurrent work against one shared work-stealing
// pool through an admission layer, and re-tunes hot (program, size
// bucket) keys in the background so the service gets faster the longer
// it runs.
//
// API:
//
//	POST /v1/run     {"program","n","seed","acc"}        execute once
//	POST /v1/tune    {"program","n","max","wait"}        (re)tune
//	GET  /v1/configs                                     stored configs
//	GET  /v1/stats                                       counters
//	GET  /v1/programs                                    registered programs
//	GET  /healthz                                        liveness
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"petabricks/internal/bench"
	"petabricks/internal/configstore"
	"petabricks/internal/obs"
	"petabricks/internal/runtime"
)

// Options configures a Server. Pool, Store, and Registry are required.
type Options struct {
	Pool     *runtime.Pool
	Store    *configstore.Store
	Registry *Registry

	// MaxInflight caps requests executing simultaneously on the shared
	// pool; further requests queue. Default: 2 × pool workers.
	MaxInflight int
	// MaxQueue caps requests waiting for an execution slot before the
	// server sheds load with 503. Default 64.
	MaxQueue int
	// QueueTimeout bounds how long a queued request waits for a slot.
	// Default 10s.
	QueueTimeout time.Duration
	// MaxN rejects absurd input sizes outright. Default 1<<21.
	MaxN int
	// TuneMax is the default largest training size for /v1/tune requests
	// that omit "max" and for idle re-tuning. Default 4096.
	TuneMax int64
	// PromoteMargin is the fractional speedup a freshly tuned config
	// must show over the incumbent to be promoted. Default 0.02.
	PromoteMargin float64
	// RetuneInterval is how often the background tuner considers
	// re-tuning the hottest key while the server is idle. 0 disables
	// idle re-tuning; /v1/tune still works.
	RetuneInterval time.Duration
	// RetuneMinAge keeps freshly tuned keys from being re-tuned
	// immediately. Default 10 × RetuneInterval.
	RetuneMinAge time.Duration
	// Seed is the base seed for tuning measurements. Default 1.
	Seed int64
	// Logf, when set, receives operational log lines (tuning outcomes,
	// save failures). Nil is silent.
	Logf func(format string, args ...any)
	// Metrics, when set, enables observability: GET /metrics serves the
	// registry in Prometheus text format and the server, pool, and store
	// register their metrics on it. Nil disables collection entirely.
	Metrics *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (opt-in).
	EnablePprof bool
}

func (o Options) withDefaults() (Options, error) {
	if o.Pool == nil || o.Store == nil || o.Registry == nil {
		return o, errors.New("server: Pool, Store, and Registry are required")
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 2 * o.Pool.NumWorkers()
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 10 * time.Second
	}
	if o.MaxN <= 0 {
		o.MaxN = 1 << 21
	}
	if o.TuneMax <= 0 {
		o.TuneMax = 4096
	}
	if o.PromoteMargin <= 0 {
		o.PromoteMargin = 0.02
	}
	if o.RetuneMinAge <= 0 {
		o.RetuneMinAge = 10 * o.RetuneInterval
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o, nil
}

// Server is the pbserve HTTP service. Construct with New, serve
// Handler(), and Close before shutting the pool down.
type Server struct {
	opts  Options
	pool  *runtime.Pool
	store *configstore.Store
	reg   *Registry
	tuner *tuner
	mux   *http.ServeMux

	sem     chan struct{} // admission slots
	waiting atomic.Int64  // requests queued for a slot
	closed  atomic.Bool

	start     time.Time
	requests  atomic.Int64 // /v1/run requests admitted for execution
	completed atomic.Int64 // /v1/run requests finished successfully
	failures  atomic.Int64 // /v1/run executions that returned an error
	shed      atomic.Int64 // requests rejected by the admission layer

	// Request latency histograms; nil (a no-op to observe) unless
	// Options.Metrics was set.
	latRun  *obs.Histogram
	latTune *obs.Histogram
}

// New builds a Server and starts its background tuner goroutine.
func New(opts Options) (*Server, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:  opts,
		pool:  opts.Pool,
		store: opts.Store,
		reg:   opts.Registry,
		sem:   make(chan struct{}, opts.MaxInflight),
		start: time.Now(),
	}
	s.tuner = newTuner(s)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/run", s.handleRun)
	s.mux.HandleFunc("/v1/tune", s.handleTune)
	s.mux.HandleFunc("/v1/configs", s.handleConfigs)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/programs", s.handlePrograms)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.instrument()
	s.tuner.startLoop()
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops accepting work, shuts the background tuner down, and
// saves the config store. It does not close the pool — the owner does
// that after the HTTP listener has drained.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.tuner.stop()
	if err := s.store.Save(); err != nil {
		s.opts.Logf("pbserve: final store save failed: %v", err)
	}
}

// --- admission ----------------------------------------------------------

var errBusy = errors.New("server at capacity")

// acquire claims an execution slot, queuing up to MaxQueue waiters for
// at most QueueTimeout. This is the admission layer: every benchmark
// execution shares one pool, so total concurrency is bounded no matter
// how many HTTP connections arrive.
func (s *Server) acquire(r *http.Request) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if s.waiting.Add(1) > int64(s.opts.MaxQueue) {
		s.waiting.Add(-1)
		return errBusy
	}
	defer s.waiting.Add(-1)
	t := time.NewTimer(s.opts.QueueTimeout)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-t.C:
		return errBusy
	case <-r.Context().Done():
		return r.Context().Err()
	}
}

func (s *Server) release() { <-s.sem }

// inflight returns the number of requests currently executing.
func (s *Server) inflight() int { return len(s.sem) }

// idle reports whether no request is executing or queued; the tuner
// only re-tunes during idle periods.
func (s *Server) idle() bool { return s.inflight() == 0 && s.waiting.Load() == 0 }

// --- handlers -----------------------------------------------------------

type runRequest struct {
	Program string `json:"program"`
	N       int    `json:"n"`
	Seed    int64  `json:"seed"`
	Acc     *int   `json:"acc"` // poisson accuracy index; nil = highest
}

type runResponse struct {
	Program      string  `json:"program"`
	N            int     `json:"n"`
	Workers      int     `json:"workers"`
	Seconds      float64 `json:"seconds"`
	Checksum     float64 `json:"checksum"`
	Detail       string  `json:"detail,omitempty"`
	Config       string  `json:"config"`
	ConfigSource string  `json:"config_source"` // "store" or "baseline"
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.closed.Load() {
		writeErr(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	var req runRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	b, ok := s.reg.Get(req.Program)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown program %q", req.Program))
		return
	}
	if req.N <= 0 {
		writeErr(w, http.StatusBadRequest, "n must be positive")
		return
	}
	if req.N > s.opts.MaxN {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("n exceeds the server limit %d", s.opts.MaxN))
		return
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	acc := -1
	if req.Acc != nil {
		acc = *req.Acc
	}

	// Best known configuration: tuned entry from the store (nearest size
	// bucket), falling back to the benchmark's untrained baseline.
	cfg, key, tuned := s.store.Lookup(req.Program, int64(req.N), s.pool.NumWorkers())
	source, keyStr := "store", key.String()
	if !tuned {
		if b.Baseline == nil {
			writeErr(w, http.StatusConflict,
				fmt.Sprintf("program %q has no tuned configuration and no baseline; tune it first", req.Program))
			return
		}
		cfg = b.Baseline()
		source, keyStr = "baseline", "baseline"
	}

	if err := s.acquire(r); err != nil {
		s.shed.Add(1)
		s.writeBusy(w, "server at capacity; retry later")
		return
	}
	s.requests.Add(1)
	started := time.Now()
	res, err := b.Run(s.pool, cfg, req.N, req.Seed, bench.RunOpts{AccIndex: acc})
	s.latRun.ObserveSince(started)
	s.release()
	if err != nil {
		s.failures.Add(1)
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.completed.Add(1)
	s.tuner.recordHit(req.Program, int64(req.N))
	writeJSON(w, http.StatusOK, runResponse{
		Program:      req.Program,
		N:            req.N,
		Workers:      s.pool.NumWorkers(),
		Seconds:      res.Seconds,
		Checksum:     res.Checksum,
		Detail:       res.Detail,
		Config:       keyStr,
		ConfigSource: source,
	})
}

type tuneRequest struct {
	Program string `json:"program"`
	N       int64  `json:"n"`    // serving size the tuned key targets; default max
	Max     int64  `json:"max"`  // largest training size; default Options.TuneMax
	Wait    bool   `json:"wait"` // block until the tune finishes
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.closed.Load() {
		writeErr(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	var req tuneRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	b, ok := s.reg.Get(req.Program)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown program %q", req.Program))
		return
	}
	if !b.Tunable() {
		writeErr(w, http.StatusBadRequest,
			fmt.Sprintf("program %q is not tunable through this endpoint", req.Program))
		return
	}
	if req.Max <= 0 {
		req.Max = s.opts.TuneMax
	}
	if req.N <= 0 {
		req.N = req.Max
	}
	if req.N > int64(s.opts.MaxN) || req.Max > int64(s.opts.MaxN) {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("size exceeds the server limit %d", s.opts.MaxN))
		return
	}
	job := tuneJob{program: req.Program, size: req.N, max: req.Max}
	if req.Wait {
		job.reply = make(chan tuneOutcome, 1)
	}
	if !s.tuner.enqueue(job) {
		s.writeBusy(w, "tuning queue full; retry later")
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, map[string]any{
			"status":  "queued",
			"program": req.Program,
			"n":       req.N,
			"max":     req.Max,
		})
		return
	}
	started := time.Now()
	select {
	case out := <-job.reply:
		s.latTune.ObserveSince(started)
		if out.Err != nil {
			writeErr(w, http.StatusInternalServerError, out.Err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "done",
			"config":   out.Key,
			"promoted": out.Promoted,
			"new_cost": out.NewCost,
			"old_cost": out.OldCost,
		})
	case <-r.Context().Done():
		writeErr(w, http.StatusRequestTimeout, "client went away while tuning")
	}
}

type configEntry struct {
	Key     string    `json:"key"`
	Program string    `json:"program"`
	Bucket  int       `json:"bucket"`
	Workers int       `json:"workers"`
	Cost    float64   `json:"cost"`
	TunedAt time.Time `json:"tuned_at"`
	Hits    int64     `json:"hits"`
	Config  []string  `json:"config"` // rendered "name = value" lines
}

func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	snap := s.store.Snapshot()
	out := make([]configEntry, 0, len(snap))
	for _, e := range snap {
		lines := renderConfigLines(e)
		out = append(out, configEntry{
			Key:     e.Key.String(),
			Program: e.Key.Program,
			Bucket:  e.Key.Bucket,
			Workers: e.Key.Workers,
			Cost:    e.Cost,
			TunedAt: e.TunedAt,
			Hits:    e.Hits,
			Config:  lines,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"entries": out})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"requests": map[string]any{
			"admitted":  s.requests.Load(),
			"completed": s.completed.Load(),
			"failed":    s.failures.Load(),
			"shed":      s.shed.Load(),
			"inflight":  s.inflight(),
			"queued":    s.waiting.Load(),
		},
		"pool": map[string]any{
			"workers":  s.pool.NumWorkers(),
			"steals":   s.pool.Steals(),
			"executed": s.pool.Executed(),
		},
		"store": s.store.Stats(),
		"tuner": s.tuner.statsSnapshot(),
	})
}

func (s *Server) handlePrograms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	type prog struct {
		Name    string `json:"name"`
		Tunable bool   `json:"tunable"`
	}
	var out []prog
	for _, name := range s.reg.Names() {
		b, _ := s.reg.Get(name)
		out = append(out, prog{Name: name, Tunable: b.Tunable()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"programs": out})
}

// --- helpers ------------------------------------------------------------

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// renderConfigLines flattens an entry's configuration into sorted
// "name = value" / "selector name = levels" lines (the pbtune file
// format, line by line).
func renderConfigLines(e configstore.Entry) []string {
	var lines []string
	ints := make([]string, 0, len(e.Cfg.Ints))
	for k := range e.Cfg.Ints {
		ints = append(ints, k)
	}
	sort.Strings(ints)
	for _, k := range ints {
		lines = append(lines, fmt.Sprintf("%s = %d", k, e.Cfg.Ints[k]))
	}
	sels := make([]string, 0, len(e.Cfg.Sels))
	for k := range e.Cfg.Sels {
		sels = append(sels, k)
	}
	sort.Strings(sels)
	for _, k := range sels {
		lines = append(lines, fmt.Sprintf("selector %s = %s", k, e.Cfg.Sels[k].String()))
	}
	return lines
}
