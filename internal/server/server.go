// Package server implements pbserve: a long-running PetaBricks
// execution service. It exposes the benchmark kernels and interpreted
// .pbcc transforms over HTTP (stdlib net/http only), executes every
// request under the best known tuned configuration from a persistent
// config store, caps concurrent work against one shared work-stealing
// pool through an admission layer, and re-tunes hot (program, size
// bucket) keys in the background so the service gets faster the longer
// it runs.
//
// In cluster mode (Options.Cluster) the server additionally routes
// each request to the consistent-hash owner of its (program,
// size-bucket) key, coalesces concurrent identical small runs into one
// execution, serves an async job API for large inputs, and pulls
// peers' tuned configurations into the local store. See README
// "Cluster mode".
//
// API:
//
//	POST /v1/run       {"program","n","seed","acc","engine"}  execute once
//	POST /v1/tune      {"program","n","max","wait"}      (re)tune
//	POST /v1/jobs      {"program","n","seed","acc"}      submit async job
//	GET  /v1/jobs/{id}                                   poll job state
//	GET  /v1/configs   [?digest=1 | ?program=&n=]        stored configs
//	GET  /v1/stats                                       counters
//	GET  /v1/programs                                    registered programs
//	GET  /healthz                                        liveness
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"petabricks/internal/artifact"
	"petabricks/internal/bench"
	"petabricks/internal/choice"
	"petabricks/internal/cluster"
	"petabricks/internal/configstore"
	"petabricks/internal/obs"
	"petabricks/internal/pbc/interp"
	"petabricks/internal/runtime"
)

// Options configures a Server. Pool, Store, and Registry are required.
type Options struct {
	Pool     *runtime.Pool
	Store    *configstore.Store
	Registry *Registry

	// MaxInflight caps requests executing simultaneously on the shared
	// pool; further requests queue. Default: 2 × pool workers.
	MaxInflight int
	// MaxQueue caps requests waiting for an execution slot before the
	// server sheds load with 503. Default 64.
	MaxQueue int
	// QueueTimeout bounds how long a queued request waits for a slot.
	// Default 10s.
	QueueTimeout time.Duration
	// MaxN rejects absurd input sizes outright. Default 1<<21.
	MaxN int
	// TuneMax is the default largest training size for /v1/tune requests
	// that omit "max" and for idle re-tuning. Default 4096.
	TuneMax int64
	// PromoteMargin is the fractional speedup a freshly tuned config
	// must show over the incumbent to be promoted. Default 0.02.
	PromoteMargin float64
	// RetuneInterval is how often the background tuner considers
	// re-tuning the hottest key while the server is idle. 0 disables
	// idle re-tuning; /v1/tune still works.
	RetuneInterval time.Duration
	// RetuneMinAge keeps freshly tuned keys from being re-tuned
	// immediately. Default 10 × RetuneInterval.
	RetuneMinAge time.Duration
	// Seed is the base seed for tuning measurements. Default 1.
	Seed int64
	// Logf, when set, receives operational log lines (tuning outcomes,
	// save failures). Nil is silent.
	Logf func(format string, args ...any)
	// Metrics, when set, enables observability: GET /metrics serves the
	// registry in Prometheus text format and the server, pool, and store
	// register their metrics on it. Nil disables collection entirely.
	Metrics *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (opt-in).
	EnablePprof bool

	// Cluster enables multi-node mode: requests whose (program,
	// size-bucket) shard key is owned by a peer are forwarded there, and
	// the replicator pulls peers' tuned configs into the local store.
	// Nil (or a single-member cluster) preserves single-node behavior.
	Cluster *cluster.Cluster
	// ReplicateInterval is how often tuned configurations are pulled
	// from peers. Default 5s; negative disables replication. Ignored
	// without a Cluster.
	ReplicateInterval time.Duration
	// CoalesceWindow is the micro-batch window a coalescing leader
	// lingers so identical requests arriving just behind it pile onto
	// one execution. A positive window enables coalescing anywhere; 0
	// (default) collapses concurrent duplicates with no added latency
	// but only in cluster mode — single-node behavior stays untouched
	// unless explicitly opted in. Negative disables coalescing.
	CoalesceWindow time.Duration
	// CoalesceMaxN caps the input size eligible for coalescing — large
	// runs are long enough that collapsing them saves little and the
	// async job API is the better tool. Default 65536.
	CoalesceMaxN int
	// MaxJobs bounds the async job store. Default 256.
	MaxJobs int

	// Artifacts, when set, is the tiered compiled-artifact store: every
	// registry benchmark backed by a DSL engine is pointed at it before
	// traffic starts, so compiled bytecode persists across restarts and a
	// rebooted node serves its first request warm. GET /v1/artifacts
	// exposes the disk tier to replication peers. Nil keeps each engine
	// on its private in-memory store.
	Artifacts *artifact.Store
}

func (o Options) withDefaults() (Options, error) {
	if o.Pool == nil || o.Store == nil || o.Registry == nil {
		return o, errors.New("server: Pool, Store, and Registry are required")
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 2 * o.Pool.NumWorkers()
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 10 * time.Second
	}
	if o.MaxN <= 0 {
		o.MaxN = 1 << 21
	}
	if o.TuneMax <= 0 {
		o.TuneMax = 4096
	}
	if o.PromoteMargin <= 0 {
		o.PromoteMargin = 0.02
	}
	if o.RetuneMinAge <= 0 {
		o.RetuneMinAge = 10 * o.RetuneInterval
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.ReplicateInterval == 0 {
		o.ReplicateInterval = 5 * time.Second
	}
	if o.CoalesceMaxN <= 0 {
		o.CoalesceMaxN = 1 << 16
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = cluster.DefaultMaxJobs
	}
	return o, nil
}

// Server is the pbserve HTTP service. Construct with New, serve
// Handler(), and Close before shutting the pool down.
type Server struct {
	opts  Options
	pool  *runtime.Pool
	store *configstore.Store
	reg   *Registry
	tuner *tuner
	mux   *http.ServeMux

	// Cluster-mode components. cluster may be nil (single node); the
	// others always exist and degrade to local behavior on their own.
	cluster   *cluster.Cluster
	replic    *cluster.Replicator
	jobs      *cluster.JobStore
	coalescer *cluster.Coalescer // nil: coalescing disabled
	jobWG     sync.WaitGroup     // running async job goroutines

	sem     chan struct{} // admission slots
	waiting atomic.Int64  // requests queued for a slot
	closed  atomic.Bool

	start     time.Time
	requests  atomic.Int64 // /v1/run requests admitted for execution
	completed atomic.Int64 // /v1/run requests finished successfully
	failures  atomic.Int64 // /v1/run executions that returned an error
	shed      atomic.Int64 // requests rejected by the admission layer

	// Request latency histograms; nil (a no-op to observe) unless
	// Options.Metrics was set.
	latRun  *obs.Histogram
	latTune *obs.Histogram
}

// New builds a Server and starts its background tuner goroutine.
func New(opts Options) (*Server, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:    opts,
		pool:    opts.Pool,
		store:   opts.Store,
		reg:     opts.Registry,
		cluster: opts.Cluster,
		jobs:    cluster.NewJobStore(opts.MaxJobs),
		sem:     make(chan struct{}, opts.MaxInflight),
		start:   time.Now(),
	}
	// Coalescing is on by default only in cluster mode: collapsing
	// identical concurrent requests changes observable single-node
	// semantics (a queued duplicate becomes a follower of the in-flight
	// execution), so single-node servers must opt in with a positive
	// window.
	if opts.CoalesceWindow > 0 || (opts.CoalesceWindow == 0 && opts.Cluster.Enabled()) {
		s.coalescer = cluster.NewCoalescer(opts.CoalesceWindow)
	}
	s.replic = cluster.NewReplicator(s.cluster, s.store, opts.ReplicateInterval, opts.PromoteMargin, opts.Logf).
		WithArtifacts(opts.Artifacts)
	s.tuner = newTuner(s)
	// Point every DSL engine at the shared artifact store before any
	// traffic: a store populated by a previous process (or a peer) then
	// warm-starts compiled bytecode instead of lowering from scratch.
	if opts.Artifacts != nil {
		for _, name := range opts.Registry.Names() {
			if b, ok := opts.Registry.Get(name); ok && b.Engine != nil {
				b.Engine.UseArtifacts(opts.Artifacts)
			}
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/run", s.handleRun)
	s.mux.HandleFunc("/v1/tune", s.handleTune)
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/jobs/", s.handleJobs)
	s.mux.HandleFunc("/v1/configs", s.handleConfigs)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/programs", s.handlePrograms)
	s.mux.HandleFunc("/v1/artifacts", s.handleArtifacts)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.instrument()
	s.tuner.startLoop()
	s.replic.Start()
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops accepting work and drains: the background tuner shuts
// down (queued tune jobs are failed so waiting clients unblock rather
// than hang the HTTP drain), the replicator stops, running async jobs
// finish (their admission waits are bounded by QueueTimeout), and the
// config store is flushed once. It does not close the pool — the owner
// does that after the HTTP listener has drained.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.tuner.stop()
	s.replic.Stop()
	s.jobWG.Wait()
	if err := s.store.Save(); err != nil {
		s.opts.Logf("pbserve: final store save failed: %v", err)
	}
}

// --- admission ----------------------------------------------------------

var (
	errBusy     = errors.New("server at capacity")
	errShutdown = errors.New("server shutting down")
)

// isBusy classifies an execution error as admission shedding (503
// territory) rather than an execution failure.
func isBusy(err error) bool {
	return errors.Is(err, errBusy) || errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// acquire claims an execution slot, queuing up to MaxQueue waiters for
// at most QueueTimeout. This is the admission layer: every benchmark
// execution shares one pool, so total concurrency is bounded no matter
// how many HTTP connections arrive.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if s.waiting.Add(1) > int64(s.opts.MaxQueue) {
		s.waiting.Add(-1)
		return errBusy
	}
	defer s.waiting.Add(-1)
	t := time.NewTimer(s.opts.QueueTimeout)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-t.C:
		return errBusy
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// inflight returns the number of requests currently executing.
func (s *Server) inflight() int { return len(s.sem) }

// idle reports whether no request is executing or queued; the tuner
// only re-tunes during idle periods.
func (s *Server) idle() bool { return s.inflight() == 0 && s.waiting.Load() == 0 }

// --- handlers -----------------------------------------------------------

type runRequest struct {
	Program string `json:"program"`
	N       int    `json:"n"`
	Seed    int64  `json:"seed"`
	Acc     *int   `json:"acc"` // poisson accuracy index; nil = highest
	// Engine optionally pins the execution tier for interpreted
	// programs: "interp", "closure" or "jit". Empty leaves the tuned
	// configuration's choice in place. Native kernels ignore it.
	Engine string `json:"engine,omitempty"`
}

// engineModes maps the /v1/run engine names to interp.EngineKey values.
var engineModes = map[string]int64{
	"interp":  interp.EngineInterp,
	"closure": interp.EngineClosure,
	"jit":     interp.EngineJIT,
}

type runResponse struct {
	Program      string  `json:"program"`
	N            int     `json:"n"`
	Workers      int     `json:"workers"`
	Seconds      float64 `json:"seconds"`
	Checksum     float64 `json:"checksum"`
	Detail       string  `json:"detail,omitempty"`
	Config       string  `json:"config"`
	ConfigSource string  `json:"config_source"` // "store" or "baseline"
	// Bucket is the size bucket of the stored entry that served the
	// config (-1 when running on the untrained baseline); comparing it
	// with the request's own bucket shows how far the nearest-bucket
	// lookup stretched.
	Bucket int `json:"bucket"`
	// ServedBy names the node that executed the run (cluster mode).
	ServedBy string `json:"served_by,omitempty"`
	// Coalesced marks a response that shared another request's
	// execution rather than running itself.
	Coalesced bool `json:"coalesced,omitempty"`
}

// validateRun applies the shared request checks for /v1/run and
// /v1/jobs, normalizing defaults in place. It returns the benchmark
// and the accuracy index, or an HTTP error to send.
func (s *Server) validateRun(req *runRequest) (b *bench.Benchmark, acc int, code int, errMsg string) {
	b, ok := s.reg.Get(req.Program)
	if !ok {
		return nil, 0, http.StatusNotFound, fmt.Sprintf("unknown program %q", req.Program)
	}
	if req.N <= 0 {
		return nil, 0, http.StatusBadRequest, "n must be positive"
	}
	if req.N > s.opts.MaxN {
		return nil, 0, http.StatusBadRequest, fmt.Sprintf("n exceeds the server limit %d", s.opts.MaxN)
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	acc = -1
	if req.Acc != nil {
		acc = *req.Acc
	}
	if req.Engine != "" {
		if _, ok := engineModes[req.Engine]; !ok {
			return nil, 0, http.StatusBadRequest,
				fmt.Sprintf("unknown engine %q (want interp, closure or jit)", req.Engine)
		}
	}
	return b, acc, 0, ""
}

// resolveConfig finds the best known configuration for the request:
// tuned entry from the store (nearest size bucket), falling back to
// the benchmark's untrained baseline. bucket is the matched entry's
// size bucket, -1 on baseline.
func (s *Server) resolveConfig(b *bench.Benchmark, req runRequest) (cfg *choice.Config, keyStr, source string, bucket int, errMsg string) {
	cfg, key, tuned := s.store.Lookup(req.Program, int64(req.N), s.pool.NumWorkers())
	if tuned {
		keyStr, source, bucket = key.String(), "store", key.Bucket
	} else if b.Baseline != nil {
		cfg, keyStr, source, bucket = b.Baseline(), "baseline", "baseline", -1
	} else {
		return nil, "", "", -1,
			fmt.Sprintf("program %q has no tuned configuration and no baseline; tune it first", req.Program)
	}
	if mode, ok := engineModes[req.Engine]; ok {
		cfg = cfg.Clone()
		cfg.SetInt(interp.EngineKey, mode)
	}
	return cfg, keyStr, source, bucket, ""
}

// execute runs one benchmark request under the admission layer and
// maintains the request counters. Every execution path — synchronous
// /v1/run, a coalescing leader, an async job — funnels through here.
func (s *Server) execute(ctx context.Context, b *bench.Benchmark, cfg *choice.Config, req runRequest, acc int) (bench.Result, error) {
	if s.closed.Load() {
		return bench.Result{}, errShutdown
	}
	if err := s.acquire(ctx); err != nil {
		return bench.Result{}, err
	}
	s.requests.Add(1)
	started := time.Now()
	res, err := b.Run(s.pool, cfg, req.N, req.Seed, bench.RunOpts{AccIndex: acc})
	s.latRun.ObserveSince(started)
	s.release()
	if err != nil {
		s.failures.Add(1)
		return res, err
	}
	s.completed.Add(1)
	s.tuner.recordHit(req.Program, int64(req.N))
	return res, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.closed.Load() {
		writeErr(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	var req runRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	b, acc, code, msg := s.validateRun(&req)
	if code != 0 {
		writeErr(w, code, msg)
		return
	}

	// Cluster routing hook: if a peer owns this (program, size-bucket)
	// key and this request has not already hopped, relay it there. A
	// failed forward falls back to local execution — the cluster layer
	// is an optimization, never a point of failure.
	if s.cluster.Enabled() && r.Header.Get(cluster.ForwardHeader) == "" {
		shard := cluster.ShardKey(req.Program, configstore.Bucket(int64(req.N)))
		if owner, local := s.cluster.Owner(shard); !local {
			if s.forwardRun(w, r, owner, req) {
				return
			}
		}
	}

	cfg, keyStr, source, bucket, errMsg := s.resolveConfig(b, req)
	if errMsg != "" {
		writeErr(w, http.StatusConflict, errMsg)
		return
	}

	makeResponse := func(res bench.Result) runResponse {
		return runResponse{
			Program:      req.Program,
			N:            req.N,
			Workers:      s.pool.NumWorkers(),
			Seconds:      res.Seconds,
			Checksum:     res.Checksum,
			Detail:       res.Detail,
			Config:       keyStr,
			ConfigSource: source,
			Bucket:       bucket,
			ServedBy:     s.cluster.Self(),
		}
	}

	// Small deterministic runs coalesce: concurrent identical requests
	// collapse into one execution whose result everyone shares. The key
	// includes the resolved config so a promotion mid-flight starts a
	// fresh execution instead of mixing configurations. Coalesced
	// executions detach from the leader's request context (their result
	// serves other clients too); the admission QueueTimeout still
	// bounds the wait.
	if s.coalescer != nil && req.N <= s.opts.CoalesceMaxN {
		ckey := fmt.Sprintf("%s/%d/%d/%d/%s/%s", req.Program, req.N, req.Seed, acc, keyStr, req.Engine)
		v, err, follower := s.coalescer.Do(ckey, func() (any, error) {
			res, err := s.execute(context.Background(), b, cfg, req, acc)
			if err != nil {
				return runResponse{}, err
			}
			return makeResponse(res), nil
		})
		s.writeRunOutcome(w, v, err, follower)
		return
	}

	res, err := s.execute(r.Context(), b, cfg, req, acc)
	s.writeRunOutcome(w, makeResponse(res), err, false)
}

// writeRunOutcome renders one /v1/run outcome, mapping admission
// shedding and shutdown to 503 and execution failures to 500.
func (s *Server) writeRunOutcome(w http.ResponseWriter, v any, err error, follower bool) {
	switch {
	case err == nil:
		resp, ok := v.(runResponse)
		if !ok {
			writeErr(w, http.StatusInternalServerError, "internal: bad coalesced value")
			return
		}
		resp.Coalesced = follower
		writeJSON(w, http.StatusOK, resp)
	case isBusy(err):
		s.shed.Add(1)
		s.writeBusy(w, "server at capacity; retry later")
	case errors.Is(err, errShutdown):
		writeErr(w, http.StatusServiceUnavailable, errShutdown.Error())
	default:
		writeErr(w, http.StatusInternalServerError, err.Error())
	}
}

type tuneRequest struct {
	Program string `json:"program"`
	N       int64  `json:"n"`    // serving size the tuned key targets; default max
	Max     int64  `json:"max"`  // largest training size; default Options.TuneMax
	Wait    bool   `json:"wait"` // block until the tune finishes
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.closed.Load() {
		writeErr(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	var req tuneRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	b, ok := s.reg.Get(req.Program)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown program %q", req.Program))
		return
	}
	if !b.Tunable() {
		writeErr(w, http.StatusBadRequest,
			fmt.Sprintf("program %q is not tunable through this endpoint", req.Program))
		return
	}
	if req.Max <= 0 {
		req.Max = s.opts.TuneMax
	}
	if req.N <= 0 {
		req.N = req.Max
	}
	if req.N > int64(s.opts.MaxN) || req.Max > int64(s.opts.MaxN) {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("size exceeds the server limit %d", s.opts.MaxN))
		return
	}
	job := tuneJob{program: req.Program, size: req.N, max: req.Max}
	if req.Wait {
		job.reply = make(chan tuneOutcome, 1)
	}
	if !s.tuner.enqueue(job) {
		s.writeBusy(w, "tuning queue full; retry later")
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, map[string]any{
			"status":  "queued",
			"program": req.Program,
			"n":       req.N,
			"max":     req.Max,
		})
		return
	}
	started := time.Now()
	select {
	case out := <-job.reply:
		s.latTune.ObserveSince(started)
		if out.Err != nil {
			writeErr(w, http.StatusInternalServerError, out.Err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "done",
			"config":   out.Key,
			"promoted": out.Promoted,
			"new_cost": out.NewCost,
			"old_cost": out.OldCost,
		})
	case <-r.Context().Done():
		writeErr(w, http.StatusRequestTimeout, "client went away while tuning")
	}
}

// handleConfigs serves the stored configurations. Three forms:
//
//	GET /v1/configs                    digest + full entry list
//	GET /v1/configs?digest=1           digest only (replication probe)
//	GET /v1/configs?program=X&n=N      + which entry a run would get
//
// The digest lets replication peers skip unchanged snapshots; the
// lookup form answers "which bucket would actually serve this size"
// without executing anything.
func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	resp := cluster.ConfigsResponse{Digest: cluster.DigestString(s.store.Digest())}
	if q.Get("digest") != "" {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp.Entries = cluster.EncodeConfigs(s.store.Snapshot())
	if prog := q.Get("program"); prog != "" {
		n, err := strconv.ParseInt(q.Get("n"), 10, 64)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, "lookup needs a positive integer n")
			return
		}
		workers := s.pool.NumWorkers()
		if wq := q.Get("workers"); wq != "" {
			if workers, err = strconv.Atoi(wq); err != nil || workers <= 0 {
				writeErr(w, http.StatusBadRequest, "workers must be a positive integer")
				return
			}
		}
		lw := &cluster.LookupWire{
			Program:    prog,
			N:          n,
			Workers:    workers,
			WantBucket: configstore.Bucket(n),
		}
		if _, key, ok := s.store.Lookup(prog, n, workers); ok {
			lw.Found = true
			lw.MatchedKey = key.String()
			lw.MatchedBucket = key.Bucket
			lw.Exact = key.Bucket == lw.WantBucket && key.Workers == workers
		}
		resp.Lookup = lw
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"requests": map[string]any{
			"admitted":  s.requests.Load(),
			"completed": s.completed.Load(),
			"failed":    s.failures.Load(),
			"shed":      s.shed.Load(),
			"inflight":  s.inflight(),
			"queued":    s.waiting.Load(),
		},
		"pool": map[string]any{
			"workers":  s.pool.NumWorkers(),
			"steals":   s.pool.Steals(),
			"executed": s.pool.Executed(),
		},
		"store":       s.store.Stats(),
		"tuner":       s.tuner.statsSnapshot(),
		"cluster":     s.cluster.Stats(),
		"replication": s.replic.Stats(),
		"jobs":        s.jobs.Stats(),
		"coalesce": map[string]any{
			"leaders":   s.coalescer.Leaders(),
			"followers": s.coalescer.Followers(),
		},
		"engines":   interp.EngineStatsSnapshot(),
		"artifacts": artifactsSection(s.opts.Artifacts),
	})
}

// artifactsSection augments the store's tier counters with the engine's
// plan-tier traffic: the store moves opaque payloads, so "did the warm
// boot rebuild any plans" is the interpreter's to answer (see
// coldwarm_smoke.sh, which asserts builds stays 0 after a restart).
func artifactsSection(arts *artifact.Store) map[string]any {
	st := arts.Stats()
	st["plan"] = interp.PlanStats()
	return st
}

// handleArtifacts exposes the artifact store's disk tier to peers.
// Three forms, mirroring /v1/configs:
//
//	GET /v1/artifacts              digest + entry list
//	GET /v1/artifacts?digest=1     digest only (replication probe)
//	GET /v1/artifacts?id=X         one artifact's raw on-disk bytes
//
// The raw form returns the exact file contents (header line + gob
// payload); the peer's InstallRaw re-verifies schema, length, and
// checksum before accepting, so this endpoint never needs to trust its
// own disk either.
func (s *Server) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	st := s.opts.Artifacts
	if !st.Persistent() {
		writeErr(w, http.StatusNotFound, "artifact store disabled or memory-only")
		return
	}
	q := r.URL.Query()
	if id := q.Get("id"); id != "" {
		raw, err := st.ReadRaw(id)
		if err != nil {
			writeErr(w, http.StatusNotFound, "no such artifact")
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(raw)
		return
	}
	resp := cluster.ArtifactsResponse{
		Digest: cluster.DigestString(st.Digest()),
		Schema: artifact.SchemaVersion,
	}
	if q.Get("digest") == "" {
		resp.Entries = st.List()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePrograms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	type prog struct {
		Name    string `json:"name"`
		Tunable bool   `json:"tunable"`
	}
	var out []prog
	for _, name := range s.reg.Names() {
		b, _ := s.reg.Get(name)
		out = append(out, prog{Name: name, Tunable: b.Tunable()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"programs": out})
}

// --- helpers ------------------------------------------------------------

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
