package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"petabricks/internal/autotuner"
	"petabricks/internal/configstore"
)

// tuneJob is one tuning request: train program up to size max, then key
// the result under the bucket of size.
type tuneJob struct {
	program string
	size    int64
	max     int64
	idle    bool             // triggered by the idle re-tuner, not a client
	reply   chan tuneOutcome // non-nil: a client is waiting
}

// tuneOutcome reports one finished tuning run.
type tuneOutcome struct {
	Key      string
	Promoted bool
	NewCost  float64
	OldCost  float64
	Err      error
}

// tuner is the background tuning goroutine: it drains explicit
// /v1/tune jobs and, during idle periods, re-tunes the hottest
// (program, size-bucket) key so the service improves while unloaded.
// Tuning runs execute on the shared pool; configurations are promoted
// into the store only when measurably faster than the incumbent,
// re-measured back to back under current machine conditions.
type tuner struct {
	s    *Server
	jobs chan tuneJob
	quit chan struct{}
	done chan struct{}

	stopMu   sync.RWMutex
	stopping bool

	mu       sync.Mutex
	heat     map[configstore.Key]int64     // run hits since last tune
	lastTune map[configstore.Key]time.Time // completion time of last tune

	seed      atomic.Int64
	completed atomic.Int64
	promoted  atomic.Int64
	rejected  atomic.Int64
	failed    atomic.Int64
	idleRuns  atomic.Int64
}

func newTuner(s *Server) *tuner {
	t := &tuner{
		s:        s,
		jobs:     make(chan tuneJob, 16),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		heat:     map[configstore.Key]int64{},
		lastTune: map[configstore.Key]time.Time{},
	}
	t.seed.Store(s.opts.Seed)
	return t
}

func (t *tuner) startLoop() { go t.loop() }

// stop shuts the tuning loop down and drains the queue: jobs still
// waiting are failed with a shutdown error so clients blocked on
// /v1/tune?wait unblock immediately instead of hanging the HTTP drain
// until its timeout. The stopping flag (checked under stopMu by
// enqueue) guarantees no job can slip into the queue after the drain.
func (t *tuner) stop() {
	t.stopMu.Lock()
	t.stopping = true
	t.stopMu.Unlock()
	close(t.quit)
	<-t.done
	for {
		select {
		case j := <-t.jobs:
			if j.reply != nil {
				j.reply <- tuneOutcome{Err: errors.New("server shutting down before tuning started")}
			}
		default:
			return
		}
	}
}

// enqueue hands a job to the tuning goroutine; false when the queue is
// full or the server is shutting down (the caller sheds).
func (t *tuner) enqueue(j tuneJob) bool {
	t.stopMu.RLock()
	defer t.stopMu.RUnlock()
	if t.stopping {
		return false
	}
	select {
	case t.jobs <- j:
		return true
	default:
		return false
	}
}

// recordHit accumulates per-key request heat, which drives idle
// re-tuning priority.
func (t *tuner) recordHit(program string, size int64) {
	k := configstore.KeyFor(program, size, t.s.pool.NumWorkers())
	t.mu.Lock()
	t.heat[k]++
	t.mu.Unlock()
}

func (t *tuner) loop() {
	defer close(t.done)
	var tick <-chan time.Time
	if t.s.opts.RetuneInterval > 0 {
		ticker := time.NewTicker(t.s.opts.RetuneInterval)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case j := <-t.jobs:
			t.run(j)
		case <-tick:
			if j, ok := t.pickIdleJob(); ok {
				t.idleRuns.Add(1)
				t.run(j)
			}
		case <-t.quit:
			return
		}
	}
}

// pickIdleJob selects the hottest tunable key that has not been tuned
// recently, but only while the server is idle — re-tuning competes for
// the shared pool, so it must never slow live traffic.
func (t *tuner) pickIdleJob() (tuneJob, bool) {
	if !t.s.idle() {
		return tuneJob{}, false
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var bestKey configstore.Key
	var bestHeat int64
	for k, h := range t.heat {
		if h <= bestHeat {
			continue
		}
		if b, ok := t.s.reg.Get(k.Program); !ok || !b.Tunable() {
			continue
		}
		if last, ok := t.lastTune[k]; ok && now.Sub(last) < t.s.opts.RetuneMinAge {
			continue
		}
		bestKey, bestHeat = k, h
	}
	if bestHeat == 0 {
		return tuneJob{}, false
	}
	size := int64(1) << bestKey.Bucket
	max := t.s.opts.TuneMax
	if size > max {
		max = size
	}
	return tuneJob{program: bestKey.Program, size: size, max: max, idle: true}, true
}

func (t *tuner) run(j tuneJob) {
	out := t.tuneOnce(j)
	if out.Err != nil {
		t.failed.Add(1)
		t.s.opts.Logf("pbserve: tune %s failed: %v", j.program, out.Err)
	} else {
		t.completed.Add(1)
		if out.Promoted {
			t.promoted.Add(1)
		} else {
			t.rejected.Add(1)
		}
		t.s.opts.Logf("pbserve: tuned %s -> %s promoted=%v new=%.4gs old=%.4gs idle=%v",
			j.program, out.Key, out.Promoted, out.NewCost, out.OldCost, j.idle)
	}
	if j.reply != nil {
		j.reply <- out
	}
}

func (t *tuner) tuneOnce(j tuneJob) tuneOutcome {
	b, ok := t.s.reg.Get(j.program)
	if !ok {
		return tuneOutcome{Err: fmt.Errorf("unknown program %q", j.program)}
	}
	if !b.Tunable() {
		return tuneOutcome{Err: fmt.Errorf("program %q is not tunable", j.program)}
	}
	key := configstore.KeyFor(j.program, j.size, t.s.pool.NumWorkers())
	seed := t.seed.Add(1000)
	prog := b.Program(t.s.pool)
	trials := b.Trials
	if trials <= 0 {
		trials = 1
	}
	eval := &autotuner.WallClock{P: prog, Trials: trials, Seed: seed}
	opts := autotuner.Options{MinSize: b.MinSize, MaxSize: j.max}
	if b.CheckTol >= 0 {
		opts.Check = autotuner.ConsistencyCheck(prog, b.CheckTol, seed+1)
	}
	cfg, _, err := autotuner.Tune(b.Space(), eval, opts)
	if err != nil {
		return tuneOutcome{Key: key.String(), Err: err}
	}

	// Promotion gate: re-measure challenger and incumbent back to back at
	// the serving size so both see the same machine conditions; promote
	// only on a speedup beyond the margin. A fresh store always accepts.
	newCost := eval.Measure(cfg, j.size)
	oldCost := 0.0
	if old, _, had := t.s.store.Get(key); had {
		oldCost = eval.Measure(old, j.size)
	}
	now := time.Now()
	promoted := t.s.store.Promote(key, cfg, newCost, oldCost, t.s.opts.PromoteMargin, now)
	if promoted {
		if err := t.s.store.Save(); err != nil {
			t.s.opts.Logf("pbserve: store save failed: %v", err)
		}
	}
	t.mu.Lock()
	t.lastTune[key] = now
	t.heat[key] = 0
	t.mu.Unlock()
	return tuneOutcome{Key: key.String(), Promoted: promoted, NewCost: newCost, OldCost: oldCost}
}

// statsSnapshot reports tuner counters for /v1/stats.
func (t *tuner) statsSnapshot() map[string]any {
	t.mu.Lock()
	hot := int64(0)
	for _, h := range t.heat {
		if h > 0 {
			hot++
		}
	}
	t.mu.Unlock()
	return map[string]any{
		"queued":    len(t.jobs),
		"completed": t.completed.Load(),
		"promoted":  t.promoted.Load(),
		"rejected":  t.rejected.Load(),
		"failed":    t.failed.Load(),
		"idle_runs": t.idleRuns.Load(),
		"hot_keys":  hot,
	}
}
