package server

import (
	"fmt"
	"path/filepath"
	"sort"

	"petabricks/internal/bench"
)

// Registry maps program names to runnable benchmarks: the native-Go
// kernels plus any interpreted .pbcc transforms. Build it fully before
// handing it to New; it is read-only while the server runs.
type Registry struct {
	byName map[string]*bench.Benchmark
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*bench.Benchmark{}}
}

// Add registers one benchmark; duplicate names are an error.
func (r *Registry) Add(b *bench.Benchmark) error {
	if b == nil || b.Name == "" {
		return fmt.Errorf("server: benchmark without a name")
	}
	if _, ok := r.byName[b.Name]; ok {
		return fmt.Errorf("server: duplicate program %q", b.Name)
	}
	r.byName[b.Name] = b
	return nil
}

// AddKernels registers the four native benchmark kernels.
func (r *Registry) AddKernels() error {
	for _, b := range bench.Kernels() {
		if err := r.Add(b); err != nil {
			return err
		}
	}
	return nil
}

// LoadDSLFile parses a .pbcc source file and registers every servable
// transform under its transform name.
func (r *Registry) LoadDSLFile(path string) error {
	bs, err := bench.LoadDSL(path)
	if err != nil {
		return err
	}
	for _, b := range bs {
		if err := r.Add(b); err != nil {
			return err
		}
	}
	return nil
}

// LoadDSLDir registers every *.pbcc file in dir.
func (r *Registry) LoadDSLDir(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "*.pbcc"))
	if err != nil {
		return err
	}
	for _, p := range paths {
		if err := r.LoadDSLFile(p); err != nil {
			return err
		}
	}
	return nil
}

// Get resolves a program by name.
func (r *Registry) Get(name string) (*bench.Benchmark, bool) {
	b, ok := r.byName[name]
	return b, ok
}

// Names lists registered programs sorted by name.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for k := range r.byName {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
