// Command pbfuzz is the generative differential fuzzer for the whole
// compile/execute pipeline: it generates random well-formed PetaBricks
// programs (internal/pbc/gen) and runs each one through the oracle
// matrix (internal/pbc/difftest) — all three execution tiers (AST
// interpreter, compiled closures, flat-bytecode jit),
// sequential vs work-stealing pool, several configurations including
// extreme cutoffs, repeated runs — demanding bit-identical outputs.
// Divergences are minimized and written as replayable JSON reproducers
// under testdata/fuzz/pbdiff.
//
// Usage:
//
//	pbfuzz -n 200 -seed 1            # fuzz 200 programs
//	pbfuzz -replay testdata/fuzz/pbdiff        # replay a corpus dir
//	pbfuzz -replay testdata/fuzz/pbdiff/x.json # replay one reproducer
//	pbfuzz -n 20 -inject             # demo: injected interpreter bug
//
// Exit status is nonzero when any divergence (or generator self-check
// failure) is found.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"petabricks/internal/pbc/difftest"
	"petabricks/internal/pbc/gen"
)

func main() {
	var (
		n       = flag.Int("n", 200, "number of generated programs")
		seed    = flag.Int64("seed", 1, "generator and oracle seed")
		workers = flag.Int("workers", 4, "pool size for parallel axes")
		configs = flag.Int("configs", 2, "random configs per case (beyond default+extreme)")
		repeats = flag.Int("repeats", 2, "runs per axis")
		maxN    = flag.Int("maxn", 14, "largest problem size")
		out     = flag.String("out", filepath.Join("testdata", "fuzz", "pbdiff"), "directory for minimized reproducers")
		inject  = flag.Bool("inject", false, "inject a deliberate interpreter bug (oracle self-test)")
		replay  = flag.String("replay", "", "replay a reproducer file or directory instead of fuzzing")
		verbose = flag.Bool("v", false, "log every case")
	)
	flag.Parse()

	opts := difftest.Options{
		Workers: *workers,
		Configs: *configs,
		Repeats: *repeats,
		Seed:    *seed,
		MaxN:    *maxN,
	}
	if *inject {
		opts.Fault = difftest.FaultInterp
	}
	h := difftest.New(opts)
	defer h.Close()

	if *replay != "" {
		os.Exit(runReplay(h, *replay))
	}
	os.Exit(runFuzz(h, *n, *seed, *out, *verbose))
}

func runReplay(h *difftest.Harness, path string) int {
	info, err := os.Stat(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbfuzz:", err)
		return 2
	}
	bad := 0
	if info.IsDir() {
		divs, paths, err := h.ReplayDir(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pbfuzz:", err)
			return 2
		}
		for file, d := range divs {
			fmt.Printf("DIVERGENCE %s: %s\n", file, d)
			bad++
		}
		fmt.Printf("replayed %d reproducers, %d divergences\n", len(paths), bad)
	} else {
		r, err := difftest.LoadRepro(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pbfuzz:", err)
			return 2
		}
		d, err := h.Replay(r)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pbfuzz:", err)
			return 2
		}
		if d != nil {
			fmt.Printf("DIVERGENCE %s\n", d)
			bad++
		} else {
			fmt.Printf("replayed %s: clean\n", r.Case)
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func runFuzz(h *difftest.Harness, n int, seed int64, out string, verbose bool) int {
	g := gen.New(seed)
	var (
		cases, invalid, runs, divergences, genFailures int
		families                                       = map[string]int{}
	)
	for i := 0; i < n; i++ {
		c, err := g.Next()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbfuzz: generator self-check failure: %v\n", err)
			genFailures++
			continue
		}
		cases++
		families[c.Family]++
		if c.WantErr {
			invalid++
		}
		res, err := h.Check(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbfuzz: %s: %v\n", c.Name, err)
			genFailures++
			continue
		}
		runs += res.Runs
		if verbose {
			fmt.Printf("%-16s %3d runs  %d divergences\n", c.Name, res.Runs, len(res.Divergences))
		}
		if len(res.Divergences) == 0 {
			continue
		}
		divergences += len(res.Divergences)
		// Minimize and persist the first divergence of the case; the
		// rest are almost always the same bug seen from another axis.
		d := res.Divergences[0]
		fmt.Printf("DIVERGENCE %s\n", d)
		repro, err := h.Minimize(c, d)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbfuzz: minimizing %s: %v\n", c.Name, err)
			continue
		}
		path := filepath.Join(out, fmt.Sprintf("s%d-%s.json", seed, c.Name))
		if err := difftest.WriteRepro(path, repro); err != nil {
			fmt.Fprintf(os.Stderr, "pbfuzz: writing %s: %v\n", path, err)
			continue
		}
		fmt.Printf("  minimized to n=%d, wrote %s\n", repro.N, path)
	}
	var fam []string
	for f, k := range families {
		fam = append(fam, fmt.Sprintf("%s:%d", f, k))
	}
	fmt.Printf("pbfuzz: %d programs (%d invalid-by-design), %d oracle runs, %d divergences, %d generator failures\n",
		cases, invalid, runs, divergences, genFailures)
	fmt.Printf("pbfuzz: families %s\n", strings.Join(fam, " "))
	if divergences > 0 || genFailures > 0 {
		return 1
	}
	return 0
}
