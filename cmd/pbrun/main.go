// Command pbrun executes a benchmark under a given configuration file
// and reports the wall time, or interprets a PetaBricks source file
// directly.
//
// Usage:
//
//	pbrun -bench sort|matmul|eigen|poisson -config file -n size [flags]
//	pbrun -src file.pbcc -transform Name -n size [-config file]
//
//	-workers n   worker threads (default all CPUs)
//	-trials k    best-of-k timing (default 3)
//	-acc i       poisson: accuracy index into the tuned family
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"petabricks/internal/choice"
	"petabricks/internal/kernels/eigen"
	"petabricks/internal/kernels/matmul"
	"petabricks/internal/kernels/poisson"
	"petabricks/internal/kernels/sortk"
	"petabricks/internal/matrix"
	"petabricks/internal/pbc/interp"
	"petabricks/internal/pbc/parser"
	"petabricks/internal/runtime"
)

func main() {
	var (
		bench     = flag.String("bench", "", "benchmark: sort, matmul, eigen, poisson")
		src       = flag.String("src", "", "PetaBricks source file to interpret")
		transform = flag.String("transform", "", "transform to run with -src")
		cfgPath   = flag.String("config", "", "configuration file")
		n         = flag.Int("n", 100000, "input size")
		workers   = flag.Int("workers", 0, "worker threads")
		trials    = flag.Int("trials", 3, "best-of-k timing")
		accIdx    = flag.Int("acc", -1, "poisson accuracy index (default: highest)")
		seed      = flag.Int64("seed", 1, "input generator seed")
	)
	flag.Parse()
	cfg := choice.NewConfig()
	if *cfgPath != "" {
		var err error
		cfg, err = choice.Load(*cfgPath)
		if err != nil {
			fatal(err)
		}
	}
	if *src != "" {
		runDSL(*src, *transform, cfg, *n, *seed)
		return
	}
	pool := runtime.NewPool(*workers)
	defer pool.Close()
	best := 0.0
	for t := 0; t < *trials; t++ {
		var sec float64
		switch *bench {
		case "sort":
			rng := rand.New(rand.NewSource(*seed + int64(t)))
			in := sortk.Generate(rng, *n)
			start := time.Now()
			choice.Run(choice.NewExec(pool, cfg), sortk.New(), in)
			sec = time.Since(start).Seconds()
			if !sortk.IsSorted(in.Data) {
				fatal(fmt.Errorf("output not sorted"))
			}
		case "matmul":
			rng := rand.New(rand.NewSource(*seed + int64(t)))
			in := matmul.Generate(rng, *n)
			start := time.Now()
			choice.Run(choice.NewExec(pool, cfg), matmul.New(), in)
			sec = time.Since(start).Seconds()
		case "eigen":
			rng := rand.New(rand.NewSource(*seed + int64(t)))
			tri := eigen.Generate(rng, *n)
			start := time.Now()
			out := choice.Run(choice.NewExec(nil, cfg), eigen.New(), tri)
			sec = time.Since(start).Seconds()
			if out.Err != nil {
				fatal(out.Err)
			}
		case "poisson":
			k, err := poisson.LevelOf(*n)
			if err != nil {
				fatal(err)
			}
			policy := poisson.DecodePolicy(cfg, k)
			if len(policy.Accuracies) == 0 {
				fatal(fmt.Errorf("configuration has no poisson policy; run pbtune -bench poisson"))
			}
			ai := *accIdx
			if ai < 0 {
				ai = len(policy.Accuracies) - 1
			}
			rng := rand.New(rand.NewSource(*seed + int64(t)))
			pr := poisson.Generate(rng, *n)
			x := matrix.New(*n, *n)
			start := time.Now()
			if err := policy.Solve(x, pr.B, ai); err != nil {
				fatal(err)
			}
			sec = time.Since(start).Seconds()
			e0 := poisson.ErrorVs(matrix.New(*n, *n), pr.Exact)
			acc := e0 / poisson.ErrorVs(x, pr.Exact)
			fmt.Printf("achieved accuracy %.3g (target %.3g)\n", acc, policy.Accuracies[ai])
		default:
			fatal(fmt.Errorf("pick -bench or -src"))
		}
		if t == 0 || sec < best {
			best = sec
		}
	}
	fmt.Printf("%s n=%d workers=%d: %.6fs (best of %d)\n",
		*bench, *n, pool.NumWorkers(), best, *trials)
}

func runDSL(path, transform string, cfg *choice.Config, n int, seed int64) {
	srcBytes, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	prog, err := parser.Parse(string(srcBytes))
	if err != nil {
		fatal(err)
	}
	eng, err := interp.New(prog)
	if err != nil {
		fatal(err)
	}
	eng.Cfg = cfg
	if transform == "" {
		transform = prog.Transforms[0].Name
	}
	res, ok := eng.Analysis(transform)
	if !ok {
		fatal(fmt.Errorf("transform %q not found", transform))
	}
	// Deterministic demo inputs: every size variable = n.
	rng := rand.New(rand.NewSource(seed))
	inputs := map[string]*matrix.Matrix{}
	for _, d := range res.Transform.From {
		nd := len(res.Matrices[d.Name].Dims)
		dims := make([]int, nd)
		for i := range dims {
			dims[i] = n
		}
		m := matrix.New(dims...)
		m.Each(func([]int, float64) float64 { return float64(rng.Intn(10)) })
		inputs[d.Name] = m
	}
	start := time.Now()
	outs, err := eng.Run(transform, inputs)
	if err != nil {
		fatal(err)
	}
	sec := time.Since(start).Seconds()
	for name, m := range outs {
		sum := 0.0
		m.Walk(func(_ []int, v float64) { sum += v })
		fmt.Printf("%s: shape %v checksum %.6g\n", name, m.Shape(), sum)
	}
	fmt.Printf("%s n=%d: %.6fs\n", transform, n, sec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbrun:", err)
	os.Exit(1)
}
