// Command pbrun executes a benchmark under a given configuration file
// and reports the wall time, or interprets a PetaBricks source file
// directly. Benchmark names resolve through the internal/bench registry
// shared with pbserve.
//
// Usage:
//
//	pbrun -bench sort|matmul|eigen|poisson -config file -n size [flags]
//	pbrun -src file.pbcc -transform Name -n size [-config file]
//
//	-workers n   worker threads (default all CPUs)
//	-trials k    best-of-k timing (default 3)
//	-acc i       poisson: accuracy index into the tuned family
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"petabricks/internal/bench"
	"petabricks/internal/choice"
	"petabricks/internal/matrix"
	"petabricks/internal/pbc/interp"
	"petabricks/internal/pbc/parser"
	"petabricks/internal/runtime"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark: "+strings.Join(bench.Names(), ", "))
		src       = flag.String("src", "", "PetaBricks source file to interpret")
		transform = flag.String("transform", "", "transform to run with -src")
		cfgPath   = flag.String("config", "", "configuration file")
		n         = flag.Int("n", 100000, "input size")
		workers   = flag.Int("workers", 0, "worker threads")
		trials    = flag.Int("trials", 3, "best-of-k timing")
		accIdx    = flag.Int("acc", -1, "poisson accuracy index (default: highest)")
		seed      = flag.Int64("seed", 1, "input generator seed")
	)
	flag.Parse()
	if *benchName == "" && *src == "" {
		fmt.Fprintln(os.Stderr, "pbrun: pick one of -bench or -src")
		flag.Usage()
		os.Exit(2)
	}
	if *benchName != "" && *src != "" {
		fmt.Fprintln(os.Stderr, "pbrun: -bench and -src are mutually exclusive")
		os.Exit(2)
	}
	cfg := choice.NewConfig()
	if *cfgPath != "" {
		var err error
		cfg, err = choice.Load(*cfgPath)
		if err != nil {
			fatal(err)
		}
	}
	if *src != "" {
		runDSL(*src, *transform, cfg, *n, *seed)
		return
	}
	b, ok := bench.Lookup(*benchName)
	if !ok {
		fatal(fmt.Errorf("unknown benchmark %q (have: %s)", *benchName, strings.Join(bench.Names(), ", ")))
	}
	pool := runtime.NewPool(*workers)
	defer pool.Shutdown()
	if *trials < 1 {
		*trials = 1
	}
	best := 0.0
	detail := ""
	for t := 0; t < *trials; t++ {
		res, err := b.Run(pool, cfg, *n, *seed+int64(t), bench.RunOpts{AccIndex: *accIdx})
		if err != nil {
			fatal(err)
		}
		if t == 0 || res.Seconds < best {
			best = res.Seconds
		}
		detail = res.Detail
	}
	if detail != "" {
		fmt.Println(detail)
	}
	fmt.Printf("%s n=%d workers=%d: %.6fs (best of %d)\n",
		*benchName, *n, pool.NumWorkers(), best, *trials)
}

func runDSL(path, transform string, cfg *choice.Config, n int, seed int64) {
	srcBytes, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	prog, err := parser.Parse(string(srcBytes))
	if err != nil {
		fatal(err)
	}
	eng, err := interp.New(prog)
	if err != nil {
		fatal(err)
	}
	eng.Cfg = cfg
	if transform == "" {
		transform = prog.Transforms[0].Name
	}
	res, ok := eng.Analysis(transform)
	if !ok {
		fatal(fmt.Errorf("transform %q not found", transform))
	}
	// Deterministic demo inputs: every size variable = n.
	rng := rand.New(rand.NewSource(seed))
	inputs := map[string]*matrix.Matrix{}
	for _, d := range res.Transform.From {
		nd := len(res.Matrices[d.Name].Dims)
		dims := make([]int, nd)
		for i := range dims {
			dims[i] = n
		}
		m := matrix.New(dims...)
		m.Each(func([]int, float64) float64 { return float64(rng.Intn(10)) })
		inputs[d.Name] = m
	}
	start := time.Now()
	outs, err := eng.Run(transform, inputs)
	if err != nil {
		fatal(err)
	}
	sec := time.Since(start).Seconds()
	for name, m := range outs {
		sum := 0.0
		m.Walk(func(_ []int, v float64) { sum += v })
		fmt.Printf("%s: shape %v checksum %.6g\n", name, m.Shape(), sum)
	}
	fmt.Printf("%s n=%d: %.6fs\n", transform, n, sec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbrun:", err)
	os.Exit(1)
}
