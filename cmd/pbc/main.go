// Command pbc is the PetaBricks compiler driver: it parses a .pbcc
// source file, runs the static analysis of §3.1, and prints the
// requested artifacts — applicable regions, choice grids, the choice
// dependency graph (text or Graphviz), the static schedule — or emits
// self-contained Go code with a configuration applied statically.
//
// Usage:
//
//	pbc [flags] file.pbcc
//
//	-transform name   only process the named transform
//	-grid             print choice grids
//	-graph            print the choice dependency graph (paper Fig. 4)
//	-dot              print the choice dependency graph in DOT format
//	-schedule         print the static schedule
//	-rules            print per-rule applicable regions
//	-emit             emit Go source (static-choice mode)
//	-pkg name         package name for -emit (default main)
//	-config file      configuration file baked in by -emit
package main

import (
	"flag"
	"fmt"
	"os"

	"petabricks/internal/choice"
	"petabricks/internal/pbc/analysis"
	"petabricks/internal/pbc/ast"
	"petabricks/internal/pbc/codegen"
	"petabricks/internal/pbc/parser"
)

func main() {
	var (
		transform = flag.String("transform", "", "only process the named transform")
		grid      = flag.Bool("grid", false, "print choice grids")
		graph     = flag.Bool("graph", false, "print the choice dependency graph")
		dot       = flag.Bool("dot", false, "print the graph in Graphviz DOT format")
		schedule  = flag.Bool("schedule", false, "print the static schedule")
		rules     = flag.Bool("rules", false, "print per-rule applicable regions")
		emit      = flag.Bool("emit", false, "emit Go source")
		pkg       = flag.String("pkg", "main", "package name for -emit")
		cfgPath   = flag.String("config", "", "configuration file for -emit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pbc [flags] file.pbcc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	var targets []*ast.Transform
	if *transform != "" {
		t, ok := prog.Find(*transform)
		if !ok {
			fatal(fmt.Errorf("transform %q not found", *transform))
		}
		targets = []*ast.Transform{t}
	} else {
		targets = prog.Transforms
	}
	var results []*analysis.Result
	for _, t := range targets {
		res, err := analysis.Analyze(prog, t)
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
	}
	anyOutput := false
	for _, res := range results {
		header := fmt.Sprintf("== transform %s ==\n", res.Transform.Name)
		if *rules {
			fmt.Print(header)
			for _, ri := range res.Rules {
				fmt.Printf("%s (%s):", ri.Rule.Name(), ri.Kind)
				for m, reg := range ri.Applicable {
					fmt.Printf(" %s=%s", m, reg)
				}
				fmt.Println()
			}
			anyOutput = true
		}
		if *grid {
			fmt.Print(header, res.RenderGrids())
			anyOutput = true
		}
		if *graph {
			fmt.Print(header, res.RenderGraph())
			anyOutput = true
		}
		if *dot {
			fmt.Print(res.RenderDot())
			anyOutput = true
		}
		if *schedule {
			fmt.Print(header, res.RenderSchedule())
			anyOutput = true
		}
	}
	if *emit {
		cfg := choice.NewConfig()
		if *cfgPath != "" {
			cfg, err = choice.Load(*cfgPath)
			if err != nil {
				fatal(err)
			}
		}
		code, err := codegen.Generate(results, codegen.Options{Package: *pkg, Config: cfg})
		if err != nil {
			fatal(err)
		}
		fmt.Print(code)
		anyOutput = true
	}
	if !anyOutput {
		// Default: summarize the compile.
		for _, res := range results {
			fmt.Printf("transform %s: %d rules, %d size vars, %d graph nodes, %d schedule steps\n",
				res.Transform.Name, len(res.Rules), len(res.SizeVars),
				len(res.Graph.Nodes), len(res.Schedule))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbc:", err)
	os.Exit(1)
}
