// Command pbbench regenerates the paper's evaluation tables and figures
// (§5) as plain-text series.
//
// Usage:
//
//	pbbench -exp fig11|fig12|fig14|fig15|fig16|table1|table2|cutoff|all [-quick] [-metrics file]
//
// -quick shrinks every experiment to seconds-scale sizes; without it the
// defaults approximate the paper's ranges at laptop scale. -metrics
// instruments the runtime pool, the interpreter, and the autotuner and
// writes a JSON metrics snapshot after the experiments ("-" = stdout).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"petabricks/internal/autotuner"
	"petabricks/internal/harness"
	"petabricks/internal/obs"
	"petabricks/internal/pbc/interp"
	"petabricks/internal/runtime"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (fig11, fig12, fig14, fig15, fig16, table1, table2, cutoff, all)")
		quick   = flag.Bool("quick", false, "shrink sizes for a fast smoke run")
		metrics = flag.String("metrics", "", "write a JSON metrics snapshot to this file after the run (\"-\" = stdout)")
	)
	flag.Parse()

	var mreg *obs.Registry
	if *metrics != "" {
		// The harness builds and discards pools per experiment, so expose
		// the process-wide scheduler totals rather than one pool's gauges.
		mreg = obs.NewRegistry()
		runtime.InstrumentTotals(mreg)
		interp.Instrument(mreg)
		autotuner.Instrument(mreg)
	}
	run := func(id string) {
		switch id {
		case "fig11":
			p := harness.DefaultPoissonParams()
			if *quick {
				p.MaxLevel = 5
			}
			emit(harness.Fig11(p))
		case "fig12":
			p := harness.DefaultEigenParams()
			if *quick {
				p.Sizes = []int{64, 128, 256}
				p.TuneMax = 128
			}
			emit(harness.Fig12(p))
		case "fig14":
			p := harness.DefaultSortParams()
			if *quick {
				p.Sizes = []int{250, 1000}
				p.TuneMax = 1024
			}
			emit(harness.Fig14(p))
		case "fig15":
			p := harness.DefaultMatMulParams()
			if *quick {
				p.Sizes = []int{64, 128}
				p.TuneMax = 64
			}
			emit(harness.Fig15(p))
		case "fig16":
			p := harness.DefaultScalabilityParams()
			if *quick {
				p.SortN = 100000
				p.MatMulN = 128
				p.MaxWorkers = 4
			}
			emit(harness.Fig16(p))
		case "table1", "table2":
			res, err := harness.RunArchTables(100000, 100000)
			if err != nil {
				fatal(err)
			}
			if id == "table1" {
				fmt.Println(res.Table1())
				if err := res.CheckTable1Shape(); err != nil {
					fmt.Println("# shape WARNING:", err)
				} else {
					fmt.Println("# shape OK: no cross-trained config beats native")
				}
			} else {
				fmt.Println(res.Table2())
			}
		case "cutoff":
			p := harness.DefaultCutoffParams()
			if *quick {
				p.N = 50000
				p.Trials = 1
			}
			emit(harness.STLCutoff(p))
		default:
			fatal(fmt.Errorf("unknown experiment %q", id))
		}
	}
	if *exp == "all" {
		for _, id := range []string{"fig11", "fig12", "fig14", "fig15", "fig16", "table1", "table2", "cutoff"} {
			run(id)
			fmt.Println()
		}
	} else {
		run(*exp)
	}
	if mreg != nil {
		if err := dumpMetrics(mreg, *metrics); err != nil {
			fatal(err)
		}
	}
}

func dumpMetrics(reg *obs.Registry, path string) error {
	raw, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

func emit(e harness.Experiment, err error) {
	if err != nil {
		fatal(err)
	}
	fmt.Println(e.Render())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbbench:", err)
	os.Exit(1)
}
