// Command pbbench regenerates the paper's evaluation tables and figures
// (§5) as plain-text series.
//
// Usage:
//
//	pbbench -exp fig11|fig12|fig14|fig15|fig16|table1|table2|cutoff|all [-quick]
//
// -quick shrinks every experiment to seconds-scale sizes; without it the
// defaults approximate the paper's ranges at laptop scale.
package main

import (
	"flag"
	"fmt"
	"os"

	"petabricks/internal/harness"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (fig11, fig12, fig14, fig15, fig16, table1, table2, cutoff, all)")
		quick = flag.Bool("quick", false, "shrink sizes for a fast smoke run")
	)
	flag.Parse()
	run := func(id string) {
		switch id {
		case "fig11":
			p := harness.DefaultPoissonParams()
			if *quick {
				p.MaxLevel = 5
			}
			emit(harness.Fig11(p))
		case "fig12":
			p := harness.DefaultEigenParams()
			if *quick {
				p.Sizes = []int{64, 128, 256}
				p.TuneMax = 128
			}
			emit(harness.Fig12(p))
		case "fig14":
			p := harness.DefaultSortParams()
			if *quick {
				p.Sizes = []int{250, 1000}
				p.TuneMax = 1024
			}
			emit(harness.Fig14(p))
		case "fig15":
			p := harness.DefaultMatMulParams()
			if *quick {
				p.Sizes = []int{64, 128}
				p.TuneMax = 64
			}
			emit(harness.Fig15(p))
		case "fig16":
			p := harness.DefaultScalabilityParams()
			if *quick {
				p.SortN = 100000
				p.MatMulN = 128
				p.MaxWorkers = 4
			}
			emit(harness.Fig16(p))
		case "table1", "table2":
			res, err := harness.RunArchTables(100000, 100000)
			if err != nil {
				fatal(err)
			}
			if id == "table1" {
				fmt.Println(res.Table1())
				if err := res.CheckTable1Shape(); err != nil {
					fmt.Println("# shape WARNING:", err)
				} else {
					fmt.Println("# shape OK: no cross-trained config beats native")
				}
			} else {
				fmt.Println(res.Table2())
			}
		case "cutoff":
			p := harness.DefaultCutoffParams()
			if *quick {
				p.N = 50000
				p.Trials = 1
			}
			emit(harness.STLCutoff(p))
		default:
			fatal(fmt.Errorf("unknown experiment %q", id))
		}
	}
	if *exp == "all" {
		for _, id := range []string{"fig11", "fig12", "fig14", "fig15", "fig16", "table1", "table2", "cutoff"} {
			run(id)
			fmt.Println()
		}
		return
	}
	run(*exp)
}

func emit(e harness.Experiment, err error) {
	if err != nil {
		fatal(err)
	}
	fmt.Println(e.Render())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbbench:", err)
	os.Exit(1)
}
