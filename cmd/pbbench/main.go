// Command pbbench regenerates the paper's evaluation tables and figures
// (§5) as plain-text series.
//
// Usage:
//
//	pbbench -exp fig11|fig12|fig14|fig15|fig16|table1|table2|cutoff|all [-quick] [-metrics file]
//	pbbench -coldstart [-coldstart-n n] [-trials k] [-baseline BENCH_interp.json]
//
// -quick shrinks every experiment to seconds-scale sizes; without it the
// defaults approximate the paper's ranges at laptop scale. -metrics
// instruments the runtime pool, the interpreter, and the autotuner and
// writes a JSON metrics snapshot after the experiments ("-" = stdout).
//
// -coldstart measures restart behavior instead: the first-request
// latency of a fresh engine against an empty artifact store (cold —
// rules lowered from source) vs. the same store reopened (warm —
// persisted bytecode loaded from disk). With -baseline the result is
// recorded under the file's "coldstart" key.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"petabricks/internal/autotuner"
	"petabricks/internal/harness"
	"petabricks/internal/obs"
	"petabricks/internal/pbc/interp"
	"petabricks/internal/runtime"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (fig11, fig12, fig14, fig15, fig16, table1, table2, cutoff, all)")
		quick     = flag.Bool("quick", false, "shrink sizes for a fast smoke run")
		metrics   = flag.String("metrics", "", "write a JSON metrics snapshot to this file after the run (\"-\" = stdout)")
		coldstart = flag.Bool("coldstart", false, "measure warm-vs-cold first-request latency instead of running experiments")
		coldN     = flag.Int64("coldstart-n", 256, "problem size for -coldstart")
		trials    = flag.Int("trials", 5, "best-of trials for -coldstart")
		baseline  = flag.String("baseline", "", "merge -coldstart results into this baseline JSON file (e.g. BENCH_interp.json)")
	)
	flag.Parse()

	if *coldstart {
		n := *coldN
		if *quick {
			n = 64
		}
		res, err := runColdstart(*trials, n)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# coldstart: %s n=%d, best of %d trials\n", res.Program, res.N, res.Trials)
		fmt.Printf("cold first request\t%.6fs\t(plan %.6fs, compile %.6fs, execute %.6fs)\n",
			res.ColdSeconds, res.ColdPlanSeconds, res.ColdCompileSeconds, res.ColdExecSeconds)
		fmt.Printf("warm first request\t%.6fs\t(plan %.6fs, compile %.6fs, execute %.6fs)\n",
			res.WarmSeconds, res.WarmPlanSeconds, res.WarmCompileSeconds, res.WarmExecSeconds)
		fmt.Printf("speedup\t%.2fx\n", res.Speedup)
		if *baseline != "" {
			if err := mergeColdstart(*baseline, res); err != nil {
				fatal(err)
			}
			fmt.Printf("# merged into %s\n", *baseline)
		}
		return
	}

	var mreg *obs.Registry
	if *metrics != "" {
		// The harness builds and discards pools per experiment, so expose
		// the process-wide scheduler totals rather than one pool's gauges.
		mreg = obs.NewRegistry()
		runtime.InstrumentTotals(mreg)
		interp.Instrument(mreg)
		autotuner.Instrument(mreg)
	}
	run := func(id string) {
		switch id {
		case "fig11":
			p := harness.DefaultPoissonParams()
			if *quick {
				p.MaxLevel = 5
			}
			emit(harness.Fig11(p))
		case "fig12":
			p := harness.DefaultEigenParams()
			if *quick {
				p.Sizes = []int{64, 128, 256}
				p.TuneMax = 128
			}
			emit(harness.Fig12(p))
		case "fig14":
			p := harness.DefaultSortParams()
			if *quick {
				p.Sizes = []int{250, 1000}
				p.TuneMax = 1024
			}
			emit(harness.Fig14(p))
		case "fig15":
			p := harness.DefaultMatMulParams()
			if *quick {
				p.Sizes = []int{64, 128}
				p.TuneMax = 64
			}
			emit(harness.Fig15(p))
		case "fig16":
			p := harness.DefaultScalabilityParams()
			if *quick {
				p.SortN = 100000
				p.MatMulN = 128
				p.MaxWorkers = 4
			}
			emit(harness.Fig16(p))
		case "table1", "table2":
			res, err := harness.RunArchTables(100000, 100000)
			if err != nil {
				fatal(err)
			}
			if id == "table1" {
				fmt.Println(res.Table1())
				if err := res.CheckTable1Shape(); err != nil {
					fmt.Println("# shape WARNING:", err)
				} else {
					fmt.Println("# shape OK: no cross-trained config beats native")
				}
			} else {
				fmt.Println(res.Table2())
			}
		case "cutoff":
			p := harness.DefaultCutoffParams()
			if *quick {
				p.N = 50000
				p.Trials = 1
			}
			emit(harness.STLCutoff(p))
		default:
			fatal(fmt.Errorf("unknown experiment %q", id))
		}
	}
	if *exp == "all" {
		for _, id := range []string{"fig11", "fig12", "fig14", "fig15", "fig16", "table1", "table2", "cutoff"} {
			run(id)
			fmt.Println()
		}
	} else {
		run(*exp)
	}
	if mreg != nil {
		if err := dumpMetrics(mreg, *metrics); err != nil {
			fatal(err)
		}
	}
}

func dumpMetrics(reg *obs.Registry, path string) error {
	raw, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

func emit(e harness.Experiment, err error) {
	if err != nil {
		fatal(err)
	}
	fmt.Println(e.Render())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbbench:", err)
	os.Exit(1)
}
