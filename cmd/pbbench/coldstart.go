package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"petabricks/internal/artifact"
	"petabricks/internal/matrix"
	"petabricks/internal/pbc/interp"
	"petabricks/internal/pbc/parser"
)

// coldstartResult is the JSON shape merged under the baseline file's
// "coldstart" key: first-request latency with an empty artifact store
// (cold — every rule lowered from source) vs. the same request against
// a store persisted by a previous process (warm — bytecode loaded from
// disk). Best-of-trials on both sides filters scheduler noise.
type coldstartResult struct {
	Program     string  `json:"program"`
	N           int64   `json:"n"`
	Trials      int     `json:"trials"`
	ColdSeconds float64 `json:"cold_first_request_seconds"`
	WarmSeconds float64 `json:"warm_first_request_seconds"`
	Speedup     float64 `json:"speedup"`
}

// runColdstart measures warm-vs-cold first-request latency for Heat1D
// (fully jit-lowerable, so the whole compile pipeline is on the cold
// path and the whole warm-start path replaces it). Each trial uses a
// fresh directory: the cold run populates it, the warm run reopens it
// with a brand-new engine and store instance, exactly like a restarted
// pbserve node.
func runColdstart(trials int, n int64) (*coldstartResult, error) {
	if trials <= 0 {
		trials = 5
	}
	res := &coldstartResult{Program: "Heat1D", N: n, Trials: trials}
	firstRequest := func(dir string) (float64, map[string]*matrix.Matrix, error) {
		store, err := artifact.Open(dir, artifact.Options{})
		if err != nil {
			return 0, nil, err
		}
		prog, err := parser.Parse(parser.Heat1DSrc)
		if err != nil {
			return 0, nil, err
		}
		eng, err := interp.New(prog)
		if err != nil {
			return 0, nil, err
		}
		eng.UseArtifacts(store)
		inputs, err := eng.GenerateInputs("Heat1D", n, 1)
		if err != nil {
			return 0, nil, err
		}
		start := time.Now()
		outs, err := eng.Run("Heat1D", inputs)
		return time.Since(start).Seconds(), outs, err
	}
	for trial := 0; trial < trials; trial++ {
		dir, err := os.MkdirTemp("", "pbbench-coldstart-")
		if err != nil {
			return nil, err
		}
		coldSec, coldOuts, err := firstRequest(dir)
		if err == nil {
			var warmSec float64
			var warmOuts map[string]*matrix.Matrix
			warmSec, warmOuts, err = firstRequest(dir)
			if err == nil {
				for name, m := range coldOuts {
					if !m.Equal(warmOuts[name]) {
						err = fmt.Errorf("coldstart: output %s differs between cold and warm run", name)
						break
					}
				}
			}
			if err == nil && (trial == 0 || coldSec < res.ColdSeconds) {
				res.ColdSeconds = coldSec
			}
			if err == nil && (trial == 0 || warmSec < res.WarmSeconds) {
				res.WarmSeconds = warmSec
			}
		}
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
	}
	if res.WarmSeconds > 0 {
		res.Speedup = res.ColdSeconds / res.WarmSeconds
	}
	return res, nil
}

// baselineDoc mirrors the benchcmp baseline file shape closely enough
// to update one key without disturbing the others: the gate owns
// "benchmarks" (kept as raw bytes), this experiment owns "coldstart".
type baselineDoc struct {
	Description string            `json:"description"`
	Environment map[string]string `json:"environment,omitempty"`
	Benchmarks  json.RawMessage   `json:"benchmarks"`
	Coldstart   json.RawMessage   `json:"coldstart,omitempty"`
}

// mergeColdstart writes the result under the "coldstart" key of the
// baseline JSON file, leaving every other section intact.
func mergeColdstart(path string, res *coldstartResult) error {
	var doc baselineDoc
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	blob, err := json.Marshal(res)
	if err != nil {
		return err
	}
	doc.Coldstart = blob
	out, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
