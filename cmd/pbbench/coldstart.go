package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"petabricks/internal/artifact"
	"petabricks/internal/matrix"
	"petabricks/internal/pbc/interp"
	"petabricks/internal/pbc/parser"
	"petabricks/internal/runtime"
)

// coldstartResult is the JSON shape merged under the baseline file's
// "coldstart" key: first-request latency with an empty artifact store
// (cold — every rule lowered from source, every plan constructed) vs.
// the same request against a store persisted by a previous process
// (warm — bytecode and plan descriptors loaded from disk). Each side is
// broken into plan-construction vs rule-compile vs execute time from
// the engine's always-on cost counters, so the baseline records which
// phase warm start eliminates. Best-of-trials on both sides filters
// scheduler noise.
type coldstartResult struct {
	Program            string  `json:"program"`
	N                  int64   `json:"n"`
	Trials             int     `json:"trials"`
	ColdSeconds        float64 `json:"cold_first_request_seconds"`
	ColdPlanSeconds    float64 `json:"cold_plan_build_seconds"`
	ColdCompileSeconds float64 `json:"cold_compile_seconds"`
	ColdExecSeconds    float64 `json:"cold_execute_seconds"`
	WarmSeconds        float64 `json:"warm_first_request_seconds"`
	WarmPlanSeconds    float64 `json:"warm_plan_build_seconds"`
	WarmCompileSeconds float64 `json:"warm_compile_seconds"`
	WarmExecSeconds    float64 `json:"warm_execute_seconds"`
	Speedup            float64 `json:"speedup"`
}

// phases is one first-request measurement split by phase.
type phases struct {
	total, plan, compile, exec float64
}

// runColdstart measures warm-vs-cold first-request latency for Heat1D
// (fully jit-lowerable, so the whole compile pipeline is on the cold
// path and the whole warm-start path replaces it). The engine gets a
// worker pool so plan construction is on the measured path too, as it
// is in pbserve. Each trial uses a fresh directory: the cold run
// populates it, the warm run reopens it with a brand-new engine and
// store instance, exactly like a restarted pbserve node.
func runColdstart(trials int, n int64) (*coldstartResult, error) {
	if trials <= 0 {
		trials = 5
	}
	res := &coldstartResult{Program: "Heat1D", N: n, Trials: trials}
	pool := runtime.NewPool(2)
	defer pool.Close()
	firstRequest := func(dir string) (phases, map[string]*matrix.Matrix, error) {
		store, err := artifact.Open(dir, artifact.Options{})
		if err != nil {
			return phases{}, nil, err
		}
		prog, err := parser.Parse(parser.Heat1DSrc)
		if err != nil {
			return phases{}, nil, err
		}
		eng, err := interp.New(prog)
		if err != nil {
			return phases{}, nil, err
		}
		eng.UseArtifacts(store)
		eng.Pool = pool
		inputs, err := eng.GenerateInputs("Heat1D", n, 1)
		if err != nil {
			return phases{}, nil, err
		}
		planBefore := interp.PlanStats().BuildSeconds
		compBefore := interp.CompileSeconds()
		start := time.Now()
		outs, err := eng.Run("Heat1D", inputs)
		var ph phases
		ph.total = time.Since(start).Seconds()
		ph.plan = interp.PlanStats().BuildSeconds - planBefore
		ph.compile = interp.CompileSeconds() - compBefore
		if ph.exec = ph.total - ph.plan - ph.compile; ph.exec < 0 {
			ph.exec = 0
		}
		return ph, outs, err
	}
	for trial := 0; trial < trials; trial++ {
		dir, err := os.MkdirTemp("", "pbbench-coldstart-")
		if err != nil {
			return nil, err
		}
		cold, coldOuts, err := firstRequest(dir)
		if err == nil {
			var warm phases
			var warmOuts map[string]*matrix.Matrix
			warm, warmOuts, err = firstRequest(dir)
			if err == nil {
				for name, m := range coldOuts {
					if !m.Equal(warmOuts[name]) {
						err = fmt.Errorf("coldstart: output %s differs between cold and warm run", name)
						break
					}
				}
			}
			if err == nil && (trial == 0 || cold.total < res.ColdSeconds) {
				res.ColdSeconds = cold.total
				res.ColdPlanSeconds = cold.plan
				res.ColdCompileSeconds = cold.compile
				res.ColdExecSeconds = cold.exec
			}
			if err == nil && (trial == 0 || warm.total < res.WarmSeconds) {
				res.WarmSeconds = warm.total
				res.WarmPlanSeconds = warm.plan
				res.WarmCompileSeconds = warm.compile
				res.WarmExecSeconds = warm.exec
			}
		}
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
	}
	if res.WarmSeconds > 0 {
		res.Speedup = res.ColdSeconds / res.WarmSeconds
	}
	return res, nil
}

// baselineDoc mirrors the benchcmp baseline file shape closely enough
// to update one key without disturbing the others: the gate owns
// "benchmarks" (kept as raw bytes), this experiment owns "coldstart".
type baselineDoc struct {
	Description string            `json:"description"`
	Environment map[string]string `json:"environment,omitempty"`
	Benchmarks  json.RawMessage   `json:"benchmarks"`
	Coldstart   json.RawMessage   `json:"coldstart,omitempty"`
}

// mergeColdstart writes the result under the "coldstart" key of the
// baseline JSON file, leaving every other section intact.
func mergeColdstart(path string, res *coldstartResult) error {
	var doc baselineDoc
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	blob, err := json.Marshal(res)
	if err != nil {
		return err
	}
	doc.Coldstart = blob
	out, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
