// Command benchcmp gates performance regressions in CI: it parses
// `go test -bench` output, compares each benchmark's best ns/op against
// the committed baseline (BENCH_interp.json), and fails when any
// benchmark regresses beyond the threshold.
//
// Usage:
//
//	go test ./internal/pbc/interp -run='^$' -bench=Interp -count=3 | \
//	    go run ./cmd/benchcmp -baseline BENCH_interp.json
//
//	-baseline file   committed baseline JSON (required)
//	-bench file      benchmark output to check ("-" = stdin, the default)
//	-threshold f     fail when ns/op regresses by more than this fraction
//	                 (default 0.25)
//	-warn f          print a warning beyond this fraction (default 0.10)
//	-write           refresh the baseline's "after" numbers from the
//	                 measured output instead of comparing
//	-md file         append a markdown comparison table to file (use
//	                 $GITHUB_STEP_SUMMARY in CI); written even when the
//	                 gate fails, so the summary shows what failed
//
// With -count=N the best (minimum) ns/op per benchmark is used, which
// filters scheduler noise on shared CI runners. A benchmark present in
// the baseline but missing from the output fails the gate (the gate
// must not silently lose coverage); an extra measured benchmark only
// warns, and -write adopts it into the baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics is one benchmark measurement in the baseline file.
type metrics struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"bytes_op,omitempty"`
	AllocsOp float64 `json:"allocs_op,omitempty"`
}

// entry is one benchmark in the baseline: the historical "before"
// numbers (kept for the record) and the current expected "after".
type entry struct {
	Name        string   `json:"name"`
	Before      *metrics `json:"before,omitempty"`
	After       metrics  `json:"after"`
	Speedup     float64  `json:"speedup,omitempty"`
	AllocsRatio float64  `json:"allocs_ratio,omitempty"`
}

type baseline struct {
	Description string            `json:"description"`
	Environment map[string]string `json:"environment,omitempty"`
	Benchmarks  []entry           `json:"benchmarks"`
	// Coldstart is the warm-vs-cold first-request record that `pbbench
	// -coldstart -baseline` maintains; the gate carries it through
	// -write untouched rather than owning its shape.
	Coldstart json.RawMessage `json:"coldstart,omitempty"`
}

func main() {
	var (
		basePath  = flag.String("baseline", "", "baseline JSON file")
		benchPath = flag.String("bench", "-", "benchmark output file (\"-\" = stdin)")
		threshold = flag.Float64("threshold", 0.25, "fail beyond this fractional ns/op regression")
		warnTh    = flag.Float64("warn", 0.10, "warn beyond this fractional ns/op regression")
		write     = flag.Bool("write", false, "refresh the baseline from the measured output")
		mdPath    = flag.String("md", "", "append a markdown comparison table to this file")
	)
	flag.Parse()
	if *basePath == "" {
		fatal(fmt.Errorf("-baseline is required"))
	}

	var in io.Reader = os.Stdin
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(got) == 0 {
		fatal(fmt.Errorf("no benchmark lines in input"))
	}

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", *basePath, err))
	}

	if *write {
		refresh(&base, got)
		out, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*basePath, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcmp: wrote %d benchmarks to %s\n", len(base.Benchmarks), *basePath)
		return
	}

	fails, warns := compare(&base, got, *threshold, *warnTh)
	if *mdPath != "" {
		if err := appendFile(*mdPath, mdTable(&base, got, *threshold, *warnTh)); err != nil {
			fatal(err)
		}
	}
	for _, w := range warns {
		fmt.Println("WARN:", w)
	}
	for _, f := range fails {
		fmt.Println("FAIL:", f)
	}
	if len(fails) > 0 {
		os.Exit(1)
	}
	fmt.Printf("benchcmp: %d benchmarks within %.0f%% of %s\n",
		len(base.Benchmarks), *threshold*100, *basePath)
}

// parseBench extracts per-benchmark metrics from `go test -bench`
// output, keeping the best (minimum ns/op) run per benchmark across
// -count repeats.
func parseBench(r io.Reader) (map[string]metrics, error) {
	out := map[string]metrics{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, m, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := out[name]; !seen || m.NsOp < prev.NsOp {
			out[name] = m
		}
	}
	return out, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkInterpHeat1D-8   4841   247870 ns/op   40765 B/op   203 allocs/op
//
// The "-8" GOMAXPROCS suffix is stripped so names match across runners.
func parseBenchLine(line string) (string, metrics, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", metrics{}, false
	}
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var m metrics
	haveNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", metrics{}, false
		}
		switch f[i+1] {
		case "ns/op":
			m.NsOp, haveNs = v, true
		case "B/op":
			m.BytesOp = v
		case "allocs/op":
			m.AllocsOp = v
		}
	}
	if !haveNs {
		return "", metrics{}, false
	}
	return name, m, true
}

// compare checks every baseline benchmark against the measured output.
func compare(base *baseline, got map[string]metrics, failTh, warnTh float64) (fails, warns []string) {
	seen := map[string]bool{}
	for _, e := range base.Benchmarks {
		seen[e.Name] = true
		m, ok := got[e.Name]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: in baseline but not measured (gate lost coverage)", e.Name))
			continue
		}
		if e.After.NsOp <= 0 {
			fails = append(fails, fmt.Sprintf("%s: baseline ns/op is %v", e.Name, e.After.NsOp))
			continue
		}
		delta := m.NsOp/e.After.NsOp - 1
		line := fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%+.1f%%)",
			e.Name, m.NsOp, e.After.NsOp, delta*100)
		switch {
		case delta > failTh:
			fails = append(fails, line)
		case delta > warnTh:
			warns = append(warns, line)
		}
	}
	var extra []string
	for name := range got {
		if !seen[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		warns = append(warns, fmt.Sprintf("%s: measured but not in baseline (add it with -write)", name))
	}
	return fails, warns
}

// refresh replaces the baseline's "after" numbers with the measured
// ones, keeping historical "before" records and recomputing the derived
// ratios. Measured benchmarks absent from the baseline are appended.
func refresh(base *baseline, got map[string]metrics) {
	for i := range base.Benchmarks {
		e := &base.Benchmarks[i]
		m, ok := got[e.Name]
		if !ok {
			continue
		}
		e.After = m
		if e.Before != nil {
			e.Speedup = round1(e.Before.NsOp / m.NsOp)
			if m.AllocsOp > 0 {
				e.AllocsRatio = round1(e.Before.AllocsOp / m.AllocsOp)
			}
		}
	}
	known := map[string]bool{}
	for _, e := range base.Benchmarks {
		known[e.Name] = true
	}
	var extra []string
	for name := range got {
		if !known[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		base.Benchmarks = append(base.Benchmarks, entry{Name: name, After: got[name]})
	}
}

// mdTable renders the comparison as a GitHub-flavored markdown table:
// one row per baseline benchmark (and any extra measured ones), with
// the same thresholds the gate enforces driving the status column.
func mdTable(base *baseline, got map[string]metrics, failTh, warnTh float64) string {
	var b strings.Builder
	b.WriteString("### Benchmark gate\n\n")
	b.WriteString("| benchmark | measured ns/op | baseline ns/op | delta | status |\n")
	b.WriteString("|---|---:|---:|---:|---|\n")
	seen := map[string]bool{}
	for _, e := range base.Benchmarks {
		seen[e.Name] = true
		m, ok := got[e.Name]
		if !ok {
			fmt.Fprintf(&b, "| %s | — | %.0f | — | ❌ not measured |\n", e.Name, e.After.NsOp)
			continue
		}
		if e.After.NsOp <= 0 {
			fmt.Fprintf(&b, "| %s | %.0f | %v | — | ❌ bad baseline |\n", e.Name, m.NsOp, e.After.NsOp)
			continue
		}
		delta := m.NsOp/e.After.NsOp - 1
		status := "✅"
		switch {
		case delta > failTh:
			status = "❌ regression"
		case delta > warnTh:
			status = "⚠️ slower"
		}
		fmt.Fprintf(&b, "| %s | %.0f | %.0f | %+.1f%% | %s |\n", e.Name, m.NsOp, e.After.NsOp, delta*100, status)
	}
	var extra []string
	for name := range got {
		if !seen[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(&b, "| %s | %.0f | — | — | ⚠️ not in baseline |\n", name, got[name].NsOp)
	}
	b.WriteString("\n")
	return b.String()
}

// appendFile appends content to path, creating it if absent (the step
// summary file already exists in CI; locally it usually does not).
func appendFile(path, content string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.WriteString(f, content)
	return err
}

func round1(v float64) float64 { return math.Round(v*10) / 10 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}
