package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: petabricks/internal/pbc/interp
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkInterpRollingSumScan-8    	       3	  900000 ns/op	  891670 B/op	   11315 allocs/op
BenchmarkInterpRollingSumScan-8    	       3	  868689 ns/op	  891670 B/op	   11315 allocs/op
BenchmarkInterpRollingSumScan-8    	       3	  950123 ns/op	  891670 B/op	   11315 allocs/op
BenchmarkInterpHeat1D-8            	    4841	  247870 ns/op	   40765 B/op	     203 allocs/op
PASS
ok  	petabricks/internal/pbc/interp	4.2s
`

func TestParseBenchKeepsBestRun(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	scan := got["BenchmarkInterpRollingSumScan"]
	if scan.NsOp != 868689 {
		t.Errorf("ns/op = %v, want the minimum across -count repeats (868689)", scan.NsOp)
	}
	if scan.BytesOp != 891670 || scan.AllocsOp != 11315 {
		t.Errorf("B/op, allocs/op = %v, %v", scan.BytesOp, scan.AllocsOp)
	}
	if h := got["BenchmarkInterpHeat1D"]; h.NsOp != 247870 {
		t.Errorf("Heat1D ns/op = %v", h.NsOp)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	petabricks/internal/pbc/interp	4.2s",
		"goos: linux",
		"--- BENCH: BenchmarkFoo",
		"Benchmark without numbers",
	} {
		if name, _, ok := parseBenchLine(line); ok {
			t.Errorf("parsed %q from noise line %q", name, line)
		}
	}
	// A line without -N suffix (GOMAXPROCS=1 style) still parses.
	name, m, ok := parseBenchLine("BenchmarkFoo \t 10 \t 123 ns/op")
	if !ok || name != "BenchmarkFoo" || m.NsOp != 123 {
		t.Errorf("bare name: ok=%v name=%q m=%v", ok, name, m)
	}
}

func testBaseline() *baseline {
	return &baseline{
		Benchmarks: []entry{
			{Name: "BenchmarkA", Before: &metrics{NsOp: 4000, AllocsOp: 100}, After: metrics{NsOp: 1000, AllocsOp: 10}},
			{Name: "BenchmarkB", After: metrics{NsOp: 2000}},
		},
	}
}

func TestCompareThresholds(t *testing.T) {
	cases := []struct {
		name       string
		got        map[string]metrics
		fails      int
		warns      int
		failSubstr string
	}{
		{
			name:  "all within bounds",
			got:   map[string]metrics{"BenchmarkA": {NsOp: 1050}, "BenchmarkB": {NsOp: 1900}},
			fails: 0, warns: 0,
		},
		{
			name:  "warn-level regression",
			got:   map[string]metrics{"BenchmarkA": {NsOp: 1150}, "BenchmarkB": {NsOp: 2000}},
			fails: 0, warns: 1,
		},
		{
			name:  "hard regression fails",
			got:   map[string]metrics{"BenchmarkA": {NsOp: 1300}, "BenchmarkB": {NsOp: 2000}},
			fails: 1, warns: 0,
			failSubstr: "BenchmarkA",
		},
		{
			name:  "missing benchmark fails",
			got:   map[string]metrics{"BenchmarkA": {NsOp: 1000}},
			fails: 1, warns: 0,
			failSubstr: "not measured",
		},
		{
			name:  "extra benchmark warns",
			got:   map[string]metrics{"BenchmarkA": {NsOp: 1000}, "BenchmarkB": {NsOp: 2000}, "BenchmarkC": {NsOp: 5}},
			fails: 0, warns: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fails, warns := compare(testBaseline(), tc.got, 0.25, 0.10)
			if len(fails) != tc.fails || len(warns) != tc.warns {
				t.Fatalf("fails=%v warns=%v, want %d/%d", fails, warns, tc.fails, tc.warns)
			}
			if tc.failSubstr != "" && !strings.Contains(fails[0], tc.failSubstr) {
				t.Errorf("fail message %q missing %q", fails[0], tc.failSubstr)
			}
		})
	}
}

func TestRefresh(t *testing.T) {
	base := testBaseline()
	refresh(base, map[string]metrics{
		"BenchmarkA": {NsOp: 800, AllocsOp: 8},
		"BenchmarkC": {NsOp: 42},
	})
	a := base.Benchmarks[0]
	if a.After.NsOp != 800 {
		t.Errorf("after = %v, want refreshed 800", a.After.NsOp)
	}
	if a.Before == nil || a.Before.NsOp != 4000 {
		t.Errorf("before must be preserved, got %+v", a.Before)
	}
	if a.Speedup != 5 {
		t.Errorf("speedup = %v, want 4000/800 = 5", a.Speedup)
	}
	if a.AllocsRatio != 12.5 {
		t.Errorf("allocs ratio = %v, want 12.5", a.AllocsRatio)
	}
	// BenchmarkB was not measured: untouched.
	if base.Benchmarks[1].After.NsOp != 2000 {
		t.Errorf("unmeasured benchmark modified: %+v", base.Benchmarks[1])
	}
	// BenchmarkC adopted without a before record.
	if len(base.Benchmarks) != 3 || base.Benchmarks[2].Name != "BenchmarkC" || base.Benchmarks[2].Before != nil {
		t.Errorf("extra benchmark not adopted cleanly: %+v", base.Benchmarks)
	}
}

// TestMDTable checks the step-summary table carries one row per
// baseline benchmark plus extras, with the gate's own verdicts.
func TestMDTable(t *testing.T) {
	got := map[string]metrics{
		"BenchmarkA": {NsOp: 1300}, // > 25% over baseline 1000: regression
		"BenchmarkB": {NsOp: 2100}, // within warn threshold
		"BenchmarkC": {NsOp: 5},    // not in baseline
	}
	md := mdTable(testBaseline(), got, 0.25, 0.10)
	for _, want := range []string{
		"| BenchmarkA | 1300 | 1000 | +30.0% | ❌ regression |",
		"| BenchmarkB | 2100 | 2000 | +5.0% | ✅ |",
		"| BenchmarkC | 5 | — | — | ⚠️ not in baseline |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("table missing row %q\n%s", want, md)
		}
	}
	missing := mdTable(testBaseline(), map[string]metrics{"BenchmarkA": {NsOp: 1000}}, 0.25, 0.10)
	if !strings.Contains(missing, "❌ not measured") {
		t.Errorf("table does not flag missing benchmarks\n%s", missing)
	}
}
