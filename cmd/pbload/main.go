// Command pbload drives load against one or more pbserve nodes and
// reports throughput, shed rate, and latency percentiles. It is the
// measurement tool behind BENCH_serve.json: the same run against a
// single node and a cluster shows what sharding and coalescing buy.
//
// Two modes:
//
//   - closed (default): -concurrency workers each keep exactly one
//     request in flight. Measures saturated throughput.
//   - open: requests start at a fixed -rate regardless of completions,
//     the way real traffic arrives. Measures behavior under a target
//     offered load, including shedding when the service can't keep up.
//
// Usage:
//
//	pbload -targets http://127.0.0.1:8600[,more...] [flags]
//
//	-targets list    comma-separated pbserve base URLs (round-robined)
//	-program name    program to run (default sort)
//	-n size          input size (default 4096)
//	-seeds k         rotate request seeds over k values (default 16; 1 = identical requests)
//	-mode m          closed | open (default closed)
//	-concurrency c   closed-loop: in-flight requests (default 8)
//	-rate r          open-loop: offered requests/second (default 50)
//	-duration d      how long to drive load (default 10s)
//	-timeout d       per-request timeout (default 30s)
//	-json            emit the summary as JSON on stdout
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type runReq struct {
	Program string `json:"program"`
	N       int    `json:"n"`
	Seed    int64  `json:"seed"`
}

type runResp struct {
	ServedBy  string `json:"served_by"`
	Coalesced bool   `json:"coalesced"`
}

func main() {
	var (
		targetsFlag = flag.String("targets", "http://127.0.0.1:8600", "comma-separated pbserve base URLs")
		program     = flag.String("program", "sort", "program to run")
		n           = flag.Int("n", 4096, "input size")
		seeds       = flag.Int64("seeds", 16, "rotate seeds over this many values")
		mode        = flag.String("mode", "closed", "closed | open")
		concurrency = flag.Int("concurrency", 8, "closed-loop in-flight requests")
		rate        = flag.Float64("rate", 50, "open-loop offered requests/second")
		duration    = flag.Duration("duration", 10*time.Second, "how long to drive load")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		asJSON      = flag.Bool("json", false, "emit the summary as JSON")
	)
	flag.Parse()

	var targets []string
	for _, t := range strings.Split(*targetsFlag, ",") {
		if t = strings.TrimSpace(strings.TrimRight(t, "/")); t != "" {
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "pbload: no targets")
		os.Exit(1)
	}
	if *seeds < 1 {
		*seeds = 1
	}

	client := &http.Client{Timeout: *timeout}
	var (
		mu      sync.Mutex
		samples []sample
		seq     atomic.Int64
	)
	shoot := func() {
		i := seq.Add(1)
		target := targets[int(i)%len(targets)]
		body, _ := json.Marshal(runReq{Program: *program, N: *n, Seed: i % *seeds})
		start := time.Now()
		var sm sample
		resp, err := client.Post(target+"/v1/run", "application/json", bytes.NewReader(body))
		sm.latency = time.Since(start)
		if err == nil {
			sm.status = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				var rr runResp
				if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rr) == nil {
					sm.forwarded = rr.ServedBy != "" && !strings.HasSuffix(rr.ServedBy, hostOf(target))
					sm.coalesced = rr.Coalesced
				}
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		mu.Lock()
		samples = append(samples, sm)
		mu.Unlock()
	}

	startAll := time.Now()
	deadline := startAll.Add(*duration)
	var wg sync.WaitGroup
	switch *mode {
	case "closed":
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					shoot()
				}
			}()
		}
	case "open":
		interval := time.Duration(float64(time.Second) / *rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for time.Now().Before(deadline) {
			<-tick.C
			wg.Add(1)
			go func() {
				defer wg.Done()
				shoot()
			}()
		}
	default:
		fmt.Fprintf(os.Stderr, "pbload: unknown -mode %q\n", *mode)
		os.Exit(1)
	}
	wg.Wait()
	elapsed := time.Since(startAll)

	s := summarize(*mode, len(targets), *program, *n, elapsed, samples)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(s)
	} else {
		fmt.Print(s.text())
	}
	if s.OK == 0 {
		os.Exit(1) // nothing succeeded; make scripts notice
	}
}

// hostOf strips the scheme so served_by (a normalized cluster address)
// can be compared against a target URL.
func hostOf(target string) string {
	if i := strings.Index(target, "://"); i >= 0 {
		return target[i+3:]
	}
	return target
}
