package main

import (
	"fmt"
	"sort"
	"time"
)

// summary is the aggregate result of a load run, printable as text or
// JSON (pbbench-style, so runs diff cleanly in version control).
type summary struct {
	Mode        string  `json:"mode"`
	Targets     int     `json:"targets"`
	Program     string  `json:"program"`
	N           int     `json:"n"`
	DurationSec float64 `json:"duration_sec"`
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	Shed        int     `json:"shed"`
	Errors      int     `json:"errors"`
	Forwarded   int     `json:"forwarded"`
	Coalesced   int     `json:"coalesced"`
	Throughput  float64 `json:"throughput_rps"`
	ShedRate    float64 `json:"shed_rate"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
}

// sample is one request's outcome.
type sample struct {
	latency   time.Duration
	status    int // HTTP status; 0 on transport error
	forwarded bool
	coalesced bool
}

// percentile returns the p-th percentile (0 <= p <= 100) of sorted
// latencies using nearest-rank; zero on an empty slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// summarize folds samples into a summary. Latency percentiles cover
// successful requests only — a shed response returns in microseconds
// and would drag percentiles into meaninglessness.
func summarize(mode string, targets int, program string, n int, elapsed time.Duration, samples []sample) summary {
	s := summary{
		Mode: mode, Targets: targets, Program: program, N: n,
		DurationSec: elapsed.Seconds(), Requests: len(samples),
	}
	var okLat []time.Duration
	for _, sm := range samples {
		switch {
		case sm.status == 200:
			s.OK++
			okLat = append(okLat, sm.latency)
			if sm.forwarded {
				s.Forwarded++
			}
			if sm.coalesced {
				s.Coalesced++
			}
		case sm.status == 503:
			s.Shed++
		default:
			s.Errors++
		}
	}
	if elapsed > 0 {
		s.Throughput = float64(s.OK) / elapsed.Seconds()
	}
	if s.Requests > 0 {
		s.ShedRate = float64(s.Shed) / float64(s.Requests)
	}
	sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	s.P50Ms = ms(percentile(okLat, 50))
	s.P95Ms = ms(percentile(okLat, 95))
	s.P99Ms = ms(percentile(okLat, 99))
	if len(okLat) > 0 {
		s.MaxMs = ms(okLat[len(okLat)-1])
	}
	return s
}

func (s summary) text() string {
	return fmt.Sprintf(
		"pbload %s: %d reqs in %.1fs against %d node(s)\n"+
			"  ok %d  shed %d (%.1f%%)  errors %d  forwarded %d  coalesced %d\n"+
			"  throughput %.1f req/s\n"+
			"  latency p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n",
		s.Mode, s.Requests, s.DurationSec, s.Targets,
		s.OK, s.Shed, 100*s.ShedRate, s.Errors, s.Forwarded, s.Coalesced,
		s.Throughput, s.P50Ms, s.P95Ms, s.P99Ms, s.MaxMs)
}
