package main

import (
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	if percentile(nil, 50) != 0 {
		t.Fatal("empty slice percentile must be 0")
	}
	lat := make([]time.Duration, 100)
	for i := range lat {
		lat[i] = time.Duration(i+1) * time.Millisecond // 1..100ms, sorted
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1 * time.Millisecond},
		{50, 50 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := percentile(lat, c.p); got != c.want {
			t.Errorf("p%g = %v, want %v", c.p, got, c.want)
		}
	}
	one := []time.Duration{7 * time.Millisecond}
	for _, p := range []float64{0, 50, 99, 100} {
		if got := percentile(one, p); got != 7*time.Millisecond {
			t.Errorf("single-sample p%g = %v", p, got)
		}
	}
}

func TestSummarize(t *testing.T) {
	samples := []sample{
		{latency: 10 * time.Millisecond, status: 200},
		{latency: 20 * time.Millisecond, status: 200, forwarded: true},
		{latency: 30 * time.Millisecond, status: 200, coalesced: true},
		{latency: 100 * time.Microsecond, status: 503}, // shed: excluded from percentiles
		{latency: 5 * time.Second, status: 0},          // transport error
	}
	s := summarize("closed", 3, "sort", 4096, 2*time.Second, samples)
	if s.Requests != 5 || s.OK != 3 || s.Shed != 1 || s.Errors != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if s.Forwarded != 1 || s.Coalesced != 1 {
		t.Fatalf("forwarded/coalesced: %+v", s)
	}
	if s.Throughput != 1.5 {
		t.Fatalf("throughput = %g, want 1.5", s.Throughput)
	}
	if s.ShedRate != 0.2 {
		t.Fatalf("shed rate = %g, want 0.2", s.ShedRate)
	}
	// Percentiles cover only successful requests.
	if s.P50Ms != 20 || s.MaxMs != 30 {
		t.Fatalf("latency: p50=%g max=%g, want 20/30", s.P50Ms, s.MaxMs)
	}
	if s.text() == "" {
		t.Fatal("empty text rendering")
	}
}
