// Command pbserve runs the PetaBricks execution service: a long-lived
// daemon exposing the benchmark kernels and interpreted .pbcc
// transforms over HTTP. Every request executes under the best known
// tuned configuration from a persistent config store; a background
// tuner re-tunes hot (program, size-bucket) keys while the server is
// idle and promotes configurations only when measurably faster, so the
// service speeds up the longer it runs.
//
// With -peers, pbserve joins a static cluster: (program, size-bucket)
// shards are owned by exactly one node via consistent hashing, requests
// are forwarded to their owner, and tuned configurations replicate
// between peers so every node benefits from any node's tuning.
//
// Usage:
//
//	pbserve [-addr :8600] [-store pbserve.store.json] [flags]
//
//	-addr addr        listen address (default :8600)
//	-store file       config-store snapshot file (default pbserve.store.json)
//	-store-max n      LRU bound on stored configs (default 256)
//	-artifacts dir    compiled-artifact directory (default <store>.artifacts; 'off' disables)
//	-workers n        shared pool worker threads (default all CPUs)
//	-dsl glob         .pbcc files to serve (e.g. 'testdata/*.pbcc')
//	-max-inflight n   concurrent executions (default 2x workers)
//	-max-queue n      waiting requests before shedding (default 64)
//	-queue-timeout d  max queue wait (default 10s)
//	-max-n n          largest accepted input size (default 2097152)
//	-tune-max n       default largest training size (default 4096)
//	-retune d         idle re-tune check interval; 0 disables (default 2m)
//	-pprof            mount net/http/pprof under /debug/pprof/
//
// Cluster flags:
//
//	-self addr        this node's address as peers reach it (e.g. http://10.0.0.1:8600)
//	-peers list       comma-separated peer addresses, including self
//	-peers-file file  JSON file holding the peer list (["addr", ...]); alternative to -peers
//	-replicate d      config replication pull interval; <0 disables (default 5s)
//	-coalesce d       micro-batch window for identical concurrent runs (default 0)
//	-max-jobs n       bound on the async job store (default 256)
//
// API: POST /v1/run, POST /v1/tune, POST /v1/jobs, GET /v1/jobs/{id},
// GET /v1/configs, GET /v1/stats, GET /v1/programs, GET /metrics
// (Prometheus text format), GET /healthz. See README "Running as a
// service", "Cluster mode", and "Observability".
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"petabricks/internal/artifact"
	"petabricks/internal/autotuner"
	"petabricks/internal/cluster"
	"petabricks/internal/configstore"
	"petabricks/internal/obs"
	"petabricks/internal/pbc/interp"
	"petabricks/internal/runtime"
	"petabricks/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8600", "listen address")
		storePath = flag.String("store", "pbserve.store.json", "config-store snapshot file")
		storeMax  = flag.Int("store-max", configstore.DefaultMax, "LRU bound on stored configs")
		artDir    = flag.String("artifacts", "", "compiled-artifact directory (default <store>.artifacts; 'off' disables persistence)")
		workers   = flag.Int("workers", 0, "worker threads (default all CPUs)")
		dslGlob   = flag.String("dsl", "", "glob of .pbcc files to serve")
		inflight  = flag.Int("max-inflight", 0, "concurrent executions (default 2x workers)")
		maxQueue  = flag.Int("max-queue", 64, "waiting requests before shedding")
		queueTO   = flag.Duration("queue-timeout", 10*time.Second, "max queue wait")
		maxN      = flag.Int("max-n", 1<<21, "largest accepted input size")
		tuneMax   = flag.Int64("tune-max", 4096, "default largest training size")
		retune    = flag.Duration("retune", 2*time.Minute, "idle re-tune interval (0 disables)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

		selfAddr  = flag.String("self", "", "this node's address as peers reach it")
		peersFlag = flag.String("peers", "", "comma-separated peer addresses, including self")
		peersFile = flag.String("peers-file", "", "JSON file with the peer list ([\"addr\", ...])")
		replicate = flag.Duration("replicate", 5*time.Second, "config replication pull interval (<0 disables)")
		coalesce  = flag.Duration("coalesce", 0, "micro-batch window for identical concurrent runs")
		maxJobs   = flag.Int("max-jobs", cluster.DefaultMaxJobs, "bound on the async job store")
	)
	flag.Parse()

	reg := server.NewRegistry()
	if err := reg.AddKernels(); err != nil {
		fatal(err)
	}
	if *dslGlob != "" {
		paths, err := filepath.Glob(*dslGlob)
		if err != nil {
			fatal(err)
		}
		if len(paths) == 0 {
			fatal(fmt.Errorf("no files match -dsl %q", *dslGlob))
		}
		for _, p := range paths {
			if err := reg.LoadDSLFile(p); err != nil {
				fatal(err)
			}
		}
	}

	store, err := configstore.Open(*storePath, *storeMax)
	if err != nil {
		fatal(err)
	}

	// The artifact store persists compiled bytecode beside the config
	// store so a restarted node serves its first request without
	// re-lowering anything ("off" keeps it in memory only).
	dir := *artDir
	if dir == "" {
		dir = *storePath + ".artifacts"
	}
	var arts *artifact.Store
	if dir == "off" {
		arts = artifact.NewMemOnly()
	} else {
		arts, err = artifact.Open(dir, artifact.Options{Logf: log.Printf})
		if err != nil {
			fatal(err)
		}
	}

	pool := runtime.NewPool(*workers)

	// A long-running daemon always collects metrics: the /metrics scrape
	// is how operators see the pool, the interpreter, and the tuner work.
	metrics := obs.NewRegistry()
	interp.Instrument(metrics)
	autotuner.Instrument(metrics)

	peers, err := peerList(*peersFlag, *peersFile)
	if err != nil {
		fatal(err)
	}
	cl, err := cluster.New(cluster.Options{
		Self:    *selfAddr,
		Peers:   peers,
		Logf:    log.Printf,
		Metrics: metrics,
	})
	if err != nil {
		fatal(err)
	}

	srv, err := server.New(server.Options{
		Pool:              pool,
		Store:             store,
		Registry:          reg,
		MaxInflight:       *inflight,
		MaxQueue:          *maxQueue,
		QueueTimeout:      *queueTO,
		MaxN:              *maxN,
		TuneMax:           *tuneMax,
		RetuneInterval:    *retune,
		Logf:              log.Printf,
		Metrics:           metrics,
		EnablePprof:       *pprofOn,
		Cluster:           cl,
		ReplicateInterval: *replicate,
		CoalesceWindow:    *coalesce,
		MaxJobs:           *maxJobs,
		Artifacts:         arts,
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	if cl.Enabled() {
		log.Printf("pbserve: cluster mode, self=%s peers=%v", cl.Self(), peers)
	}
	log.Printf("pbserve: listening on %s (%d workers, %d programs, store %s, %d tuned configs)",
		*addr, pool.NumWorkers(), len(reg.Names()), *storePath, store.Len())
	if arts.Persistent() {
		log.Printf("pbserve: artifact store %s holds %d compiled artifacts", arts.Dir(), arts.Len())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("pbserve: %v; draining", s)
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
		return
	}

	// Orderly shutdown: stop accepting connections and drain in-flight
	// requests, stop the tuner and replicator, wait for async jobs,
	// persist the store, then drain the worker pool so no goroutine
	// leaks past exit.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("pbserve: http shutdown: %v", err)
	}
	srv.Close()
	pool.Shutdown()
	log.Printf("pbserve: stopped cleanly")
}

// peerList resolves cluster membership from -peers (comma-separated)
// or -peers-file (a JSON array of addresses). At most one may be set.
func peerList(flagVal, fileVal string) ([]string, error) {
	if flagVal != "" && fileVal != "" {
		return nil, errors.New("-peers and -peers-file are mutually exclusive")
	}
	if fileVal != "" {
		raw, err := os.ReadFile(fileVal)
		if err != nil {
			return nil, fmt.Errorf("-peers-file: %w", err)
		}
		var peers []string
		if err := json.Unmarshal(raw, &peers); err != nil {
			return nil, fmt.Errorf("-peers-file %s: %w", fileVal, err)
		}
		return peers, nil
	}
	if flagVal == "" {
		return nil, nil
	}
	var peers []string
	for _, p := range strings.Split(flagVal, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbserve:", err)
	os.Exit(1)
}
