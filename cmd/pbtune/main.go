// Command pbtune autotunes one of the benchmark programs on the current
// machine (wall-clock training) or on a simulated architecture (model
// training), writing the resulting application configuration file.
//
// Usage:
//
//	pbtune -bench sort|matmul|eigen|poisson [flags]
//	pbtune -src file.pbcc -transform Name [flags]
//
//	-o file        output configuration file (default <bench>.cfg)
//	-max n         largest training input size
//	-workers n     worker threads for wall-clock training
//	-arch name     train on a simulated architecture instead
//	               (Mobile, "Xeon 1-way", "Xeon 8-way", Niagara; sort only)
//	-maxlevel k    poisson: largest grid level (N = 2^k+1)
package main

import (
	"flag"
	"fmt"
	"os"

	"petabricks/internal/autotuner"
	"petabricks/internal/choice"
	"petabricks/internal/harness"
	"petabricks/internal/kernels/poisson"
	"petabricks/internal/kernels/sortk"
	"petabricks/internal/pbc/interp"
	"petabricks/internal/pbc/parser"
	"petabricks/internal/runtime"
	"petabricks/internal/simarch"
)

func main() {
	var (
		bench    = flag.String("bench", "sort", "benchmark: sort, matmul, eigen, poisson")
		src      = flag.String("src", "", "PetaBricks source file to tune instead of a benchmark")
		tname    = flag.String("transform", "", "transform to tune with -src")
		out      = flag.String("o", "", "output configuration file")
		maxSize  = flag.Int64("max", 100000, "largest training input size")
		workers  = flag.Int("workers", 0, "worker threads (default all CPUs)")
		archName = flag.String("arch", "", "simulated architecture (sort only)")
		maxLevel = flag.Int("maxlevel", 6, "poisson: largest grid level")
	)
	flag.Parse()
	path := *out
	if path == "" {
		path = *bench + ".cfg"
	}
	var cfg *choice.Config
	var report string
	if *src != "" {
		srcBytes, err := os.ReadFile(*src)
		if err != nil {
			fatal(err)
		}
		prog, err := parser.Parse(string(srcBytes))
		if err != nil {
			fatal(err)
		}
		eng, err := interp.New(prog)
		if err != nil {
			fatal(err)
		}
		name := *tname
		if name == "" {
			name = prog.Transforms[0].Name
		}
		tuned, rep, err := eng.Tune(name, interp.TuneOptions{
			MinSize: 16, MaxSize: *maxSize, CheckTol: 1e-9, Seed: 3,
		})
		if err != nil {
			fatal(err)
		}
		if err := tuned.Save(path); err != nil {
			fatal(err)
		}
		fmt.Printf("tuned %s: %s (final %.4gs)\n", name,
			rep.Steps[len(rep.Steps)-1].Best, rep.Steps[len(rep.Steps)-1].BestCost)
		fmt.Println("wrote", path)
		return
	}
	switch *bench {
	case "sort":
		if *archName != "" {
			arch, err := simarch.ByName(*archName)
			if err != nil {
				fatal(err)
			}
			tr := sortk.New()
			tuned, rep, err := autotuner.Tune(sortk.Space(tr), simarch.SortModel{Arch: arch},
				autotuner.Options{MinSize: 64, MaxSize: *maxSize, Repeats: 2, CutoffCandidates: 6})
			if err != nil {
				fatal(err)
			}
			cfg = tuned
			report = fmt.Sprintf("trained on model %s: %s (final model cost %.4g)",
				arch.Name, harness.RenderSortConfig(cfg), rep.Steps[len(rep.Steps)-1].BestCost)
		} else {
			pool := runtime.NewPool(*workers)
			defer pool.Close()
			tuned, rep, err := harness.TuneSort(pool, *maxSize)
			if err != nil {
				fatal(err)
			}
			cfg = tuned
			report = fmt.Sprintf("wall-clock trained (%d workers): %s (final %.4gs)",
				pool.NumWorkers(), harness.RenderSortConfig(cfg), rep.Steps[len(rep.Steps)-1].BestCost)
		}
	case "matmul":
		pool := runtime.NewPool(*workers)
		defer pool.Close()
		tuned, err := harness.TuneMatMul(pool, *maxSize)
		if err != nil {
			fatal(err)
		}
		cfg = tuned
		report = "wall-clock trained: " + tuned.Selector("matmul", 0).String()
	case "eigen":
		tuned, err := harness.TuneEigen(*maxSize)
		if err != nil {
			fatal(err)
		}
		cfg = tuned
		report = "wall-clock trained: " + tuned.Selector("eig", 0).String()
	case "poisson":
		accs := []float64{1e1, 1e3, 1e5, 1e7, 1e9}
		policy := poisson.TunePolicy(accs, *maxLevel, poisson.TuneOptions{Trials: 2, Seed: 31})
		cfg = choice.NewConfig()
		policy.EncodeConfig(cfg)
		worst, err := poisson.VerifyPolicy(policy, *maxLevel, 999, 2)
		if err != nil {
			fatal(err)
		}
		report = fmt.Sprintf("accuracy-aware tuned to level %d; verified accuracies %v", *maxLevel, worst)
	default:
		fatal(fmt.Errorf("unknown benchmark %q", *bench))
	}
	if err := cfg.Save(path); err != nil {
		fatal(err)
	}
	fmt.Println(report)
	fmt.Println("wrote", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbtune:", err)
	os.Exit(1)
}
