package petabricks_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"petabricks/internal/pbc/parser"
)

// goRun invokes a command of this module with the Go toolchain.
func goRun(t *testing.T, args ...string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping toolchain invocation in -short mode")
	}
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func writeRollingSum(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rollingsum.pbcc")
	if err := os.WriteFile(path, []byte(parser.RollingSumSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLICompilerDriver(t *testing.T) {
	src := writeRollingSum(t)
	out := goRun(t, "./cmd/pbc", "-grid", "-graph", "-schedule", src)
	for _, want := range []string{
		"[1, n) = {rule 0, rule 1}",
		"(r1,=,-1)",
		"iterate dim 0 ascending",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("pbc output missing %q:\n%s", want, out)
		}
	}
	// Default summary mode.
	sum := goRun(t, "./cmd/pbc", src)
	if !strings.Contains(sum, "transform RollingSum: 2 rules") {
		t.Errorf("pbc summary: %s", sum)
	}
	// DOT output.
	dot := goRun(t, "./cmd/pbc", "-dot", src)
	if !strings.Contains(dot, "digraph") {
		t.Errorf("pbc -dot: %s", dot)
	}
}

func TestCLIEmitCompiles(t *testing.T) {
	src := writeRollingSum(t)
	code := goRun(t, "./cmd/pbc", "-emit", src)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(code), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module gen\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("emitted code failed to run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "B checksum") {
		t.Fatalf("emitted demo printed %q", out)
	}
}

func TestCLITuneThenRun(t *testing.T) {
	src := writeRollingSum(t)
	cfgPath := filepath.Join(t.TempDir(), "rs.cfg")
	tuneOut := goRun(t, "./cmd/pbtune", "-src", src, "-max", "1024", "-o", cfgPath)
	if !strings.Contains(tuneOut, "wrote "+cfgPath) {
		t.Fatalf("pbtune output: %s", tuneOut)
	}
	runOut := goRun(t, "./cmd/pbrun", "-src", src, "-config", cfgPath, "-n", "64")
	if !strings.Contains(runOut, "B: shape [64]") {
		t.Fatalf("pbrun output: %s", runOut)
	}
}

func TestCLIArchTune(t *testing.T) {
	cfgPath := filepath.Join(t.TempDir(), "niagara.cfg")
	out := goRun(t, "./cmd/pbtune", "-bench", "sort", "-arch", "Niagara",
		"-max", "100000", "-o", cfgPath)
	if !strings.Contains(out, "trained on model Niagara") {
		t.Fatalf("pbtune -arch output: %s", out)
	}
	runOut := goRun(t, "./cmd/pbrun", "-bench", "sort", "-config", cfgPath,
		"-n", "50000", "-trials", "1")
	if !strings.Contains(runOut, "sort n=50000") {
		t.Fatalf("pbrun output: %s", runOut)
	}
}

func TestCLIBenchQuickTable(t *testing.T) {
	out := goRun(t, "./cmd/pbbench", "-exp", "table2")
	for _, want := range []string{"Mobile", "Niagara", "Algorithm choices"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pbbench table2 missing %q:\n%s", want, out)
		}
	}
}
