// Package petabricks_test holds the repo-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation
// (run `go test -bench=. -benchmem`), plus ablation benchmarks for the
// design decisions DESIGN.md calls out. cmd/pbbench renders the same
// experiments as full series; these benches give per-point numbers under
// the standard Go tooling.
package petabricks_test

import (
	"math/rand"
	"sync"
	"testing"

	"petabricks/internal/autotuner"
	"petabricks/internal/choice"
	"petabricks/internal/harness"
	"petabricks/internal/kernels/eigen"
	"petabricks/internal/kernels/matmul"
	"petabricks/internal/kernels/poisson"
	"petabricks/internal/kernels/sortk"
	"petabricks/internal/matrix"
	"petabricks/internal/runtime"
	"petabricks/internal/simarch"
)

var (
	poolOnce sync.Once
	pool     *runtime.Pool

	sortTunedOnce sync.Once
	sortTuned     *choice.Config

	poissonOnce  sync.Once
	poissonTuned *poisson.Policy
)

func sharedPool() *runtime.Pool {
	poolOnce.Do(func() { pool = runtime.NewPool(0) })
	return pool
}

func tunedSort(b *testing.B) *choice.Config {
	sortTunedOnce.Do(func() {
		cfg, _, err := harness.TuneSort(sharedPool(), 1<<14)
		if err != nil {
			b.Fatal(err)
		}
		sortTuned = cfg
	})
	return sortTuned
}

func tunedPoisson() *poisson.Policy {
	poissonOnce.Do(func() {
		poissonTuned = poisson.TunePolicy(
			[]float64{1e1, 1e3, 1e5, 1e7, 1e9}, 6, poisson.TuneOptions{Trials: 1, Seed: 31})
	})
	return poissonTuned
}

// --- Figure 14: sort ------------------------------------------------------

func sortConfig(c int) *choice.Config {
	cfg := choice.NewConfig()
	sel := choice.NewSelector(c)
	if c == sortk.ChoiceMS {
		sel.Levels[0] = sel.Levels[0].WithParam("k", 2)
	}
	cfg.SetSelector("sort", sel)
	cfg.SetInt("sort.seqcutoff", 2048)
	return cfg
}

func benchSort(b *testing.B, cfg *choice.Config, n int) {
	b.Helper()
	tr := sortk.New()
	ex := choice.NewExec(sharedPool(), cfg)
	rng := rand.New(rand.NewSource(1))
	pristine := sortk.Generate(rng, n)
	work := sortk.Generate(rng, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work.Data, pristine.Data)
		choice.Run(ex, tr, work)
	}
	b.StopTimer()
	if !sortk.IsSorted(work.Data) {
		b.Fatal("unsorted output")
	}
}

func BenchmarkFig14SortInsertion(b *testing.B) { benchSort(b, sortConfig(sortk.ChoiceIS), 1750) }
func BenchmarkFig14SortQuick(b *testing.B)     { benchSort(b, sortConfig(sortk.ChoiceQS), 1750) }
func BenchmarkFig14SortMerge(b *testing.B)     { benchSort(b, sortConfig(sortk.ChoiceMS), 1750) }
func BenchmarkFig14SortRadix(b *testing.B)     { benchSort(b, sortConfig(sortk.ChoiceRS), 1750) }
func BenchmarkFig14SortAutotuned(b *testing.B) { benchSort(b, tunedSort(b), 1750) }

// §5.1's headline input size.
func BenchmarkFig14SortAutotuned100k(b *testing.B) { benchSort(b, tunedSort(b), 100000) }

// --- Figure 15: matrix multiply --------------------------------------------

func mmConfig(levels ...choice.Level) *choice.Config {
	cfg := choice.NewConfig()
	cfg.SetSelector("matmul", choice.Selector{Levels: levels}.Normalize())
	cfg.SetInt("matmul.seqcutoff", 64)
	return cfg
}

func benchMM(b *testing.B, cfg *choice.Config, n int) {
	b.Helper()
	tr := matmul.New()
	ex := choice.NewExec(sharedPool(), cfg)
	rng := rand.New(rand.NewSource(2))
	in := matmul.Generate(rng, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		choice.Run(ex, tr, in)
	}
}

func BenchmarkFig15MatMulBasic(b *testing.B) {
	benchMM(b, mmConfig(choice.Level{Cutoff: choice.Inf, Choice: matmul.ChoiceBasic}), 256)
}

func BenchmarkFig15MatMulBlocking(b *testing.B) {
	benchMM(b, mmConfig(choice.Level{Cutoff: choice.Inf, Choice: matmul.ChoiceBlocked,
		Params: map[string]int64{"block": 64}}), 256)
}

func BenchmarkFig15MatMulTranspose(b *testing.B) {
	benchMM(b, mmConfig(choice.Level{Cutoff: choice.Inf, Choice: matmul.ChoiceTranspos}), 256)
}

func BenchmarkFig15MatMulRecursive(b *testing.B) {
	benchMM(b, mmConfig(
		choice.Level{Cutoff: 64, Choice: matmul.ChoiceBlocked, Params: map[string]int64{"block": 64}},
		choice.Level{Cutoff: choice.Inf, Choice: matmul.ChoiceRecC}), 256)
}

func BenchmarkFig15MatMulStrassen(b *testing.B) {
	benchMM(b, mmConfig(
		choice.Level{Cutoff: 128, Choice: matmul.ChoiceBlocked, Params: map[string]int64{"block": 64}},
		choice.Level{Cutoff: choice.Inf, Choice: matmul.ChoiceStrassen}), 256)
}

// --- Figure 12: eigenproblem -------------------------------------------------

func benchEig(b *testing.B, cfg *choice.Config, n int) {
	b.Helper()
	tr := eigen.New()
	ex := choice.NewExec(nil, cfg)
	rng := rand.New(rand.NewSource(3))
	tri := eigen.Generate(rng, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := choice.Run(ex, tr, tri)
		if out.Err != nil {
			b.Fatal(out.Err)
		}
	}
}

func eigConfig(c int) *choice.Config {
	cfg := choice.NewConfig()
	cfg.SetSelector("eig", choice.NewSelector(c))
	return cfg
}

func BenchmarkFig12EigenQR(b *testing.B)        { benchEig(b, eigConfig(eigen.ChoiceQR), 256) }
func BenchmarkFig12EigenBisection(b *testing.B) { benchEig(b, eigConfig(eigen.ChoiceBIS), 256) }
func BenchmarkFig12EigenCutoff25(b *testing.B)  { benchEig(b, eigen.Cutoff25Config(), 256) }

func BenchmarkFig12EigenDC(b *testing.B) {
	cfg := choice.NewConfig()
	cfg.SetSelector("eig", choice.Selector{Levels: []choice.Level{
		{Cutoff: 3, Choice: eigen.ChoiceQR},
		{Cutoff: choice.Inf, Choice: eigen.ChoiceDC},
	}})
	benchEig(b, cfg, 256)
}

func BenchmarkFig12EigenAutotunedStyle(b *testing.B) {
	// The tuned shape the paper reports: DC above 48, QR below.
	cfg := choice.NewConfig()
	cfg.SetSelector("eig", choice.Selector{Levels: []choice.Level{
		{Cutoff: 49, Choice: eigen.ChoiceQR},
		{Cutoff: choice.Inf, Choice: eigen.ChoiceDC},
	}})
	benchEig(b, cfg, 256)
}

// --- Figure 11: Poisson -------------------------------------------------------

func benchPoisson(b *testing.B, run func(pr poisson.Problem) error) {
	b.Helper()
	n := poisson.SizeOfLevel(6)
	rng := rand.New(rand.NewSource(4))
	pr := poisson.Generate(rng, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(pr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11PoissonDirect(b *testing.B) {
	benchPoisson(b, func(pr poisson.Problem) error {
		x := matrix.New(pr.N, pr.N)
		return poisson.SolveDirect(x, pr.B)
	})
}

func BenchmarkFig11PoissonSOR1e9(b *testing.B) {
	benchPoisson(b, func(pr poisson.Problem) error {
		x := matrix.New(pr.N, pr.N)
		e0 := poisson.ErrorVs(x, pr.Exact)
		for poisson.ErrorVs(x, pr.Exact)*1e9 > e0 {
			poisson.SOR(x, pr.B, poisson.OmegaOpt(pr.N), 8)
		}
		return nil
	})
}

func BenchmarkFig11PoissonMultigrid1e9(b *testing.B) {
	benchPoisson(b, func(pr poisson.Problem) error {
		x := matrix.New(pr.N, pr.N)
		e0 := poisson.ErrorVs(x, pr.Exact)
		for poisson.ErrorVs(x, pr.Exact)*1e9 > e0 {
			if err := poisson.MultigridSimple(x, pr.B, 1); err != nil {
				return err
			}
		}
		return nil
	})
}

func BenchmarkFig11PoissonAutotuned1e9(b *testing.B) {
	policy := tunedPoisson()
	benchPoisson(b, func(pr poisson.Problem) error {
		x := matrix.New(pr.N, pr.N)
		return policy.Solve(x, pr.B, len(policy.Accuracies)-1)
	})
}

// --- Figure 16 / Tables 1-2: model evaluations ---------------------------------

func BenchmarkFig16ModelSweep(b *testing.B) {
	cfg := sortConfig(sortk.ChoiceMS)
	for i := 0; i < b.N; i++ {
		for cores := 1; cores <= 8; cores++ {
			a := simarch.Xeon8
			a.Cores = cores
			simarch.SortModel{Arch: a}.Measure(cfg, 400000)
		}
	}
}

func BenchmarkTable1CrossArch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunArchTables(100000, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §1 claim: std::sort cutoff ---------------------------------------------

func benchCutoff(b *testing.B, cutoff int64) {
	cfg := choice.NewConfig()
	cfg.SetSelector("sort", choice.Selector{Levels: []choice.Level{
		{Cutoff: cutoff, Choice: sortk.ChoiceIS},
		{Cutoff: choice.Inf, Choice: sortk.ChoiceMS, Params: map[string]int64{"k": 2}},
	}})
	benchSort(b, cfg, 100000)
}

func BenchmarkSTLCutoff15(b *testing.B)  { benchCutoff(b, 15) }
func BenchmarkSTLCutoff100(b *testing.B) { benchCutoff(b, 100) }
func BenchmarkSTLCutoff600(b *testing.B) { benchCutoff(b, 600) }

// --- Ablations (DESIGN.md) -----------------------------------------------------

// Scheduler: work stealing vs a single central queue.
func benchScheduler(b *testing.B, mode runtime.Mode) {
	p := runtime.NewPoolMode(0, mode)
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ParallelFor(0, 1<<14, 8, func(w *runtime.Worker, lo, hi int) {
			s := 0
			for j := lo; j < hi; j++ {
				s += j * j
			}
			_ = s
		})
	}
}

func BenchmarkAblationSchedulerWorkStealing(b *testing.B) {
	benchScheduler(b, runtime.ModeWorkStealing)
}

func BenchmarkAblationSchedulerCentralQueue(b *testing.B) {
	benchScheduler(b, runtime.ModeCentralQueue)
}

// Sequential cutoff: tuned grain vs spawning a task for everything.
func benchCutoffAblation(b *testing.B, seqcutoff int64) {
	cfg := sortConfig(sortk.ChoiceMS)
	cfg.SetInt("sort.seqcutoff", seqcutoff)
	benchSort(b, cfg, 200000)
}

func BenchmarkAblationCutoffTuned(b *testing.B) { benchCutoffAblation(b, 2048) }
func BenchmarkAblationCutoffNone(b *testing.B)  { benchCutoffAblation(b, 2) }

// SOR storage layout: the paper's split red/black matrices vs in-place
// checkerboard sweeps.
func benchSOR(b *testing.B, split bool) {
	n := poisson.SizeOfLevel(7)
	rng := rand.New(rand.NewSource(6))
	pr := poisson.Generate(rng, n)
	x := matrix.New(n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if split {
			poisson.SOR(x, pr.B, 1.5, 10)
		} else {
			poisson.SORInPlace(x, pr.B, 1.5, 10)
		}
	}
}

func BenchmarkAblationSORLayoutSplit(b *testing.B)   { benchSOR(b, true) }
func BenchmarkAblationSORLayoutInPlace(b *testing.B) { benchSOR(b, false) }

// Tuner population: cost of training at population 2 vs 8 (quality is
// asserted in the autotuner tests; this measures the tuning-time trade).
func benchPopulation(b *testing.B, population int) {
	tr := sortk.New()
	space := sortk.Space(tr)
	model := simarch.SortModel{Arch: simarch.Xeon8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := autotuner.Tune(space, model, autotuner.Options{
			MinSize: 64, MaxSize: 100000, Population: population,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPopulation2(b *testing.B) { benchPopulation(b, 2) }
func BenchmarkAblationPopulation8(b *testing.B) { benchPopulation(b, 8) }

// Runtime micro-benchmarks: spawn/join overhead and steal throughput.
func BenchmarkRuntimeSpawnJoin(b *testing.B) {
	p := sharedPool()
	b.ResetTimer()
	p.Run(func(w *runtime.Worker) {
		for i := 0; i < b.N; i++ {
			w.Do(func(*runtime.Worker) {}, func(*runtime.Worker) {})
		}
	})
}

func BenchmarkRuntimeFibGrain(b *testing.B) {
	p := sharedPool()
	var fib func(w *runtime.Worker, n int) int
	fib = func(w *runtime.Worker, n int) int {
		if n < 2 {
			return n
		}
		if n < 12 {
			return fib(w, n-1) + fib(w, n-2)
		}
		var a, c int
		w.Do(
			func(w1 *runtime.Worker) { a = fib(w1, n-1) },
			func(w2 *runtime.Worker) { c = fib(w2, n-2) },
		)
		return a + c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(func(w *runtime.Worker) { fib(w, 24) })
	}
}
