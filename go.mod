module petabricks

go 1.23
