module petabricks

go 1.24
