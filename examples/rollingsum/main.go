// RollingSum walks the compiler pipeline of §3.1 on the paper's own
// worked example (Figure 3): parse the DSL source, print the applicable
// regions, the choice grid, the choice dependency graph (Figure 4), and
// the static schedule, then execute both rule choices through the
// interpreter and check they agree.
package main

import (
	"fmt"
	"log"

	"petabricks/internal/choice"
	"petabricks/internal/matrix"
	"petabricks/internal/pbc/analysis"
	"petabricks/internal/pbc/interp"
	"petabricks/internal/pbc/parser"
)

func main() {
	fmt.Println("PetaBricks source (paper Figure 3):")
	fmt.Print(parser.RollingSumSrc)

	prog, err := parser.Parse(parser.RollingSumSrc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := analysis.Analyze(prog, prog.Transforms[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Applicable regions (§3.1):")
	for _, ri := range res.Rules {
		fmt.Printf("  %s: %s\n", ri.Rule.Name(), ri.Applicable["B"])
	}
	fmt.Println("\nChoice grid:")
	fmt.Print(indent(res.RenderGrids()))
	fmt.Println("\nChoice dependency graph (paper Figure 4):")
	fmt.Print(indent(res.RenderGraph()))
	fmt.Println("\nStatic schedule:")
	fmt.Print(indent(res.RenderSchedule()))

	eng, err := interp.New(prog)
	if err != nil {
		log.Fatal(err)
	}
	in := matrix.FromSlice([]float64{3, 1, 4, 1, 5, 9, 2, 6})
	fmt.Printf("\nInput A = %v\n", in)
	for rule, desc := range map[int]string{
		0: "rule 0 only (data parallel, Θ(n²) work)",
		1: "rule 1 only (sequential scan, Θ(n) work)",
	} {
		cfg := choice.NewConfig()
		cfg.SetSelector(interp.SelectorName("RollingSum"), choice.NewSelector(rule))
		eng.Cfg = cfg
		out, err := eng.Run1("RollingSum", in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("B via %-45s = %v\n", desc, out)
	}
	fmt.Println("\nBoth choices compute the same function — the §3.5 consistency")
	fmt.Println("property the autotuner checks automatically during training.")
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
