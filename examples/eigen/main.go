// Eigen demonstrates §4.2: the symmetric tridiagonal eigenproblem with
// three algorithmic choices — QR iteration, bisection with inverse
// iteration, and divide-and-conquer that recursively re-enters EIG — the
// hard-coded Cutoff-25 hybrid (LAPACK dstevd's strategy), and the
// autotuned hybrid, with residual and orthogonality checks.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"petabricks/internal/choice"
	"petabricks/internal/harness"
	"petabricks/internal/kernels/eigen"
)

func main() {
	fmt.Println("Autotuning EIG (the paper found: divide-and-conquer above n≈48, QR below)...")
	tuned, err := harness.TuneEigen(512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Tuned algorithm: %s\n\n", tuned.Selector("eig", 0).Render(eigen.ChoiceNames))

	const n = 400
	rng := rand.New(rand.NewSource(9))
	tri := eigen.Generate(rng, n)
	tr := eigen.New()
	configs := []struct {
		name string
		cfg  *choice.Config
	}{
		{"QR", pure(eigen.ChoiceQR)},
		{"Bisection", pure(eigen.ChoiceBIS)},
		{"DC", dcAllTheWay()},
		{"Cutoff 25", eigen.Cutoff25Config()},
		{"Autotuned", tuned},
	}
	fmt.Printf("All eigenvalues + eigenvectors of a random symmetric tridiagonal, n=%d:\n", n)
	var firstVals []float64
	for _, c := range configs {
		start := time.Now()
		out := choice.Run(choice.NewExec(nil, c.cfg), tr, tri)
		d := time.Since(start)
		if out.Err != nil {
			log.Fatalf("%s: %v", c.name, out.Err)
		}
		res := out.R.Residual(tri)
		off, _ := out.R.Orthogonality()
		fmt.Printf("  %-10s %10.3fms  residual %8.2e  orthogonality %8.2e\n",
			c.name, float64(d.Microseconds())/1000, res, off)
		if firstVals == nil {
			firstVals = out.R.Values
			continue
		}
		for i := range firstVals {
			if diff := abs(out.R.Values[i] - firstVals[i]); diff > 1e-7 {
				log.Fatalf("%s disagrees at λ[%d] by %g", c.name, i, diff)
			}
		}
	}
	fmt.Println("\nAll five algorithms agree on every eigenvalue (§3.5 consistency).")
}

func pure(c int) *choice.Config {
	cfg := choice.NewConfig()
	cfg.SetSelector("eig", choice.NewSelector(c))
	return cfg
}

func dcAllTheWay() *choice.Config {
	cfg := choice.NewConfig()
	cfg.SetSelector("eig", choice.Selector{Levels: []choice.Level{
		{Cutoff: 3, Choice: eigen.ChoiceQR},
		{Cutoff: choice.Inf, Choice: eigen.ChoiceDC},
	}})
	return cfg
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
