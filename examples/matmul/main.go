// MatMul demonstrates §4.4: the MatrixMultiply transform's seven choices
// (base cells, blocking, transposition, the three recursive
// decompositions of Figure 1, and Strassen), autotuned against the
// single-algorithm baselines, with the discovered crossover reported.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"petabricks/internal/choice"
	"petabricks/internal/harness"
	"petabricks/internal/kernels/matmul"
	"petabricks/internal/linalg"
	"petabricks/internal/matrix"
	"petabricks/internal/runtime"
)

func main() {
	pool := runtime.NewPool(0)
	defer pool.Close()

	fmt.Println("Autotuning MatrixMultiply...")
	tuned, err := harness.TuneMatMul(pool, 256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Tuned algorithm: %s (block=%v)\n\n",
		tuned.Selector("matmul", 0).Render(matmul.ChoiceNames),
		tuned.Selector("matmul", 0).Choose(1<<20).Param("block", 64))

	const n = 256
	rng := rand.New(rand.NewSource(3))
	in := matmul.Generate(rng, n)
	want := matrix.New(n, n)
	linalg.MulBasic(want, in.A, in.B)
	tr := matmul.New()
	run := func(name string, cfg *choice.Config) {
		in.C.Fill(0)
		start := time.Now()
		choice.Run(choice.NewExec(pool, cfg), tr, in)
		d := time.Since(start)
		if diff := want.MaxAbsDiff(in.C); diff > 1e-8 {
			log.Fatalf("%s wrong by %g", name, diff)
		}
		fmt.Printf("  %-12s %10.3fms\n", name, float64(d.Microseconds())/1000)
	}
	fmt.Printf("C = A·B at n=%d (all outputs verified identical):\n", n)
	for ci, name := range matmul.ChoiceNames {
		cfg := choice.NewConfig()
		sel := choice.NewSelector(ci)
		if tr.Choices[ci].Recursive {
			sel = choice.Selector{Levels: []choice.Level{
				{Cutoff: 32, Choice: matmul.ChoiceBasic},
				{Cutoff: choice.Inf, Choice: ci},
			}}
		}
		cfg.SetSelector("matmul", sel)
		cfg.SetInt("matmul.seqcutoff", 64)
		run(name, cfg)
	}
	run("Autotuned", tuned)
}
