// DSLSort is the full PetaBricks journey on a program written in the
// language itself: a sorting transform with a quadratic base-case rule
// and a recursive merge decomposition (see parser.MergeSortSrc). It
// compiles the program, prints the compiler's view, autotunes the
// rule selector and cutoff by wall clock through the interpreter,
// compares against the single-rule baselines, and finally emits
// self-contained Go with the tuned configuration baked in.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"petabricks/internal/choice"
	"petabricks/internal/matrix"
	"petabricks/internal/pbc/analysis"
	"petabricks/internal/pbc/codegen"
	"petabricks/internal/pbc/interp"
	"petabricks/internal/pbc/parser"
)

func main() {
	prog, err := parser.Parse(parser.MergeSortSrc)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := interp.New(prog)
	if err != nil {
		log.Fatal(err)
	}
	res, _ := eng.Analysis("MergeSortDSL")
	fmt.Println("MergeSortDSL compiles to two whole-matrix choices:")
	for _, ri := range res.Rules {
		fmt.Printf("  %s (%s)\n", ri.Rule.Name(), ri.Kind)
	}

	fmt.Println("\nAutotuning the rule selector (wall clock, doubling sizes)...")
	cfg, rep, err := eng.Tune("MergeSortDSL", interp.TuneOptions{
		MinSize: 8, MaxSize: 1024, CheckTol: 0, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, step := range rep.Steps {
		fmt.Printf("  size %5d: best %8.4gs  %s\n", step.Size, step.BestCost, step.Best)
	}
	sel := cfg.Selector(interp.SelectorName("MergeSortDSL"), 0)
	fmt.Printf("\nTuned selector: %s  (r0 = selection sort, r1 = recursive merge)\n",
		sel.Render([]string{"r0", "r1"}))

	const n = 2000
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(rng.Intn(1 << 20))
	}
	bench := func(name string, c *choice.Config) {
		eng.Cfg = c
		in := matrix.FromSlice(append([]float64{}, data...))
		start := time.Now()
		out, err := eng.Run1("MergeSortDSL", in)
		if err != nil {
			fmt.Printf("  %-22s %s\n", name, err)
			return
		}
		d := time.Since(start)
		for i := 1; i < n; i++ {
			if out.At1(i) < out.At1(i-1) {
				log.Fatalf("%s produced unsorted output", name)
			}
		}
		fmt.Printf("  %-22s %9.3fms\n", name, float64(d.Microseconds())/1000)
	}
	fmt.Printf("\nSorting %d elements through the interpreter:\n", n)
	base := choice.NewConfig()
	base.SetSelector(interp.SelectorName("MergeSortDSL"), choice.NewSelector(0))
	fixed := choice.NewConfig()
	fixed.SetSelector(interp.SelectorName("MergeSortDSL"), choice.Selector{Levels: []choice.Level{
		{Cutoff: 4, Choice: 0},
		{Cutoff: choice.Inf, Choice: 1},
	}})
	bench("selection sort only", base)
	bench("recursive, cutoff 4", fixed)
	bench("autotuned", cfg)

	// Emit Go with the tuned configuration applied statically.
	var results []*analysis.Result
	for _, t := range prog.Transforms {
		r, err := analysis.Analyze(prog, t)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, r)
	}
	code, err := codegen.Generate(results, codegen.Options{Package: "main", Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStatic-choice Go emission: %d lines (first lines below).\n",
		strings.Count(code, "\n"))
	for _, line := range strings.SplitN(code, "\n", 4)[:3] {
		fmt.Println("  " + line)
	}
}
