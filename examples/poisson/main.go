// Poisson demonstrates the variable-accuracy autotuning of §4.1: the
// dynamic-programming tuner builds the POISSONi family — for each target
// accuracy and grid level, the fastest mix of direct solves, SOR(ω_opt)
// iteration, and V-cycles that recurse through lower-accuracy variants —
// then verifies every accuracy target on fresh instances and compares
// against the single-method baselines at the strictest target.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"petabricks/internal/kernels/poisson"
	"petabricks/internal/matrix"
)

func main() {
	accs := []float64{1e1, 1e3, 1e5, 1e7, 1e9}
	const maxLevel = 6 // N = 65
	fmt.Printf("Tuning POISSONi for accuracies %v up to N=%d...\n\n",
		accs, poisson.SizeOfLevel(maxLevel))
	policy := poisson.TunePolicy(accs, maxLevel, poisson.TuneOptions{Trials: 2, Seed: 31})

	fmt.Println("Tuned decisions (accuracy × grid level):")
	for ai, a := range accs {
		fmt.Printf("  accuracy %7.0e:", a)
		for k := 2; k <= maxLevel; k++ {
			d := policy.Get(ai, k)
			switch d.Kind {
			case poisson.KindDirect:
				fmt.Printf("  k%d=DIRECT", k)
			case poisson.KindSOR:
				fmt.Printf("  k%d=SOR×%d", k, d.Iters)
			case poisson.KindMG:
				fmt.Printf("  k%d=MG×%d→acc%d", k, d.Iters, d.Sub)
			}
		}
		fmt.Println()
	}

	worst, err := poisson.VerifyPolicy(policy, maxLevel, 999, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nVerified accuracies on fresh instances (§3.5 check):")
	for ai, a := range accs {
		status := "OK"
		if worst[ai] < a/10 {
			status = "MISSED"
		}
		fmt.Printf("  target %7.0e: achieved %10.3e  %s\n", a, worst[ai], status)
	}

	n := poisson.SizeOfLevel(maxLevel)
	rng := rand.New(rand.NewSource(11))
	pr := poisson.Generate(rng, n)
	target := accs[len(accs)-1]
	fmt.Printf("\nSolving one N=%d instance to accuracy %.0e:\n", n, target)
	baselines := []struct {
		name string
		run  func() *matrix.Matrix
	}{
		{"Direct", func() *matrix.Matrix {
			x := matrix.New(n, n)
			if err := poisson.SolveDirect(x, pr.B); err != nil {
				log.Fatal(err)
			}
			return x
		}},
		{"SOR(ω_opt)", func() *matrix.Matrix {
			x := matrix.New(n, n)
			e0 := poisson.ErrorVs(x, pr.Exact)
			for poisson.ErrorVs(x, pr.Exact)*target > e0 {
				poisson.SOR(x, pr.B, poisson.OmegaOpt(n), 8)
			}
			return x
		}},
		{"Multigrid", func() *matrix.Matrix {
			x := matrix.New(n, n)
			e0 := poisson.ErrorVs(x, pr.Exact)
			for poisson.ErrorVs(x, pr.Exact)*target > e0 {
				if err := poisson.MultigridSimple(x, pr.B, 1); err != nil {
					log.Fatal(err)
				}
			}
			return x
		}},
		{"Autotuned", func() *matrix.Matrix {
			x := matrix.New(n, n)
			if err := policy.Solve(x, pr.B, len(accs)-1); err != nil {
				log.Fatal(err)
			}
			return x
		}},
	}
	e0 := poisson.ErrorVs(matrix.New(n, n), pr.Exact)
	for _, b := range baselines {
		start := time.Now()
		x := b.run()
		d := time.Since(start)
		acc := e0 / poisson.ErrorVs(x, pr.Exact)
		fmt.Printf("  %-12s %10.3fms  accuracy %.3g\n",
			b.name, float64(d.Microseconds())/1000, acc)
	}
}
