// Quickstart: algorithmic choice as a first-class construct, on the
// paper's motivating example (sorting). It builds the generalized Sort
// transform (insertion, quick, n-way merge, radix — each recursive
// algorithm re-enters Sort), autotunes it on this machine, prints the
// tuned multi-level algorithm in the paper's notation, and compares it
// against every single-algorithm configuration.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"petabricks/internal/choice"
	"petabricks/internal/harness"
	"petabricks/internal/kernels/sortk"
	"petabricks/internal/runtime"
)

func main() {
	pool := runtime.NewPool(0) // all CPUs
	defer pool.Close()

	fmt.Println("Autotuning sort (bottom-up, doubling training sizes)...")
	tuned, report, err := harness.TuneSort(pool, 1<<15)
	if err != nil {
		log.Fatal(err)
	}
	for _, step := range report.Steps {
		fmt.Printf("  size %6d: best %8.4gs  %s\n", step.Size, step.BestCost, step.Best)
	}
	fmt.Printf("\nTuned algorithm: %s\n", harness.RenderSortConfig(tuned))
	fmt.Printf("Sequential cutoff: %d\n\n", tuned.Int("sort.seqcutoff", 0))

	const n = 200000
	tr := sortk.New()
	bench := func(name string, cfg *choice.Config) {
		rng := rand.New(rand.NewSource(7))
		in := sortk.Generate(rng, n)
		start := time.Now()
		choice.Run(choice.NewExec(pool, cfg), tr, in)
		d := time.Since(start)
		if !sortk.IsSorted(in.Data) {
			log.Fatalf("%s produced unsorted output", name)
		}
		fmt.Printf("  %-14s %10.4fms\n", name, float64(d.Microseconds())/1000)
	}
	fmt.Printf("Sorting %d elements:\n", n)
	for c, name := range sortk.ChoiceNames {
		cfg := choice.NewConfig()
		sel := choice.NewSelector(c)
		if c == sortk.ChoiceMS {
			sel.Levels[0] = sel.Levels[0].WithParam("k", 2)
		}
		cfg.SetSelector("sort", sel)
		cfg.SetInt("sort.seqcutoff", 2048)
		if c == sortk.ChoiceIS {
			fmt.Printf("  %-14s %10s\n", name, "(skipped: quadratic)")
			continue
		}
		bench(name, cfg)
	}
	bench("Autotuned", tuned)

	path := "sort.cfg"
	if err := tuned.Save(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nConfiguration written to %s (hand-editable; rerun with pbrun -config).\n", path)
}
